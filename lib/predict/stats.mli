(** Statistical ranking of failure predictors (paper §3.3).

    precision P = |failing runs where the predictor held| /
                  |runs where it held|;
    recall    R = |failing runs where it held| / |failing runs|.

    Predictors are ranked by F_beta, the weighted harmonic mean of P
    and R; Gist sets beta = 0.5, favouring precision, "because its
    primary aim is to not confuse developers with potentially erroneous
    failure predictors". *)

(** One monitored run: the predictors that held and whether the run
    failed (with the target signature). *)
type observation = { predictors : Predictor.t list; failing : bool }

type ranked = {
  predictor : Predictor.t;
  precision : float;
  recall : float;
  f_measure : float;
  n_failing_with : int;
  n_success_with : int;
}

val beta_default : float

val f_measure : ?beta:float -> precision:float -> recall:float -> unit -> float

(** Rank all predictors, best first (F-measure, deterministic
    tie-break).  Each observation's predictor list is deduplicated. *)
val rank : ?beta:float -> observation list -> ranked list

(** {2 Confidence bounds (the adaptive early-exit stopping rule)} *)

(** Default error rate for the confidence intervals: 0.05 (95%). *)
val delta_default : float

(** Inverse standard-normal CDF (Acklam's rational approximation):
    the z with Phi(z) = p.  [neg_infinity]/[infinity] at p <= 0 /
    p >= 1. *)
val norm_ppf : float -> float

(** The two-sided critical value for error rate [delta]:
    [norm_ppf (1 - delta/2)] (1.96 at delta = 0.05). *)
val z_of_delta : float -> float

(** Wilson score interval on a binomial proportion, clamped to [0,1].
    [trials <= 0] yields the vacuous interval (0, 1).  At a fixed
    observed rate the half-width strictly shrinks as trials grow:
    more confirming reports never widen the interval. *)
val wilson_interval :
  ?delta:float -> successes:int -> trials:int -> unit -> float * float

(** Conservative interval on F_beta from per-predictor counts:
    Wilson bounds on precision (over [n_failing_with +
    n_success_with] trials) and recall (over [total_failing] trials),
    combined through F_beta's monotonicity in both arguments. *)
val f_interval :
  ?beta:float ->
  ?delta:float ->
  n_failing_with:int ->
  n_success_with:int ->
  total_failing:int ->
  unit ->
  float * float

(** Per-predictor sufficient statistics: the streaming replacement for
    retaining observations.  Holds (failing-with, success-with)
    counters per predictor plus the failing-run total — O(predictors)
    state, not O(runs).

    {!Acc.rank} is bit-identical to {!rank} over the same
    observations in any accumulation or merge order: the counts are
    commutative integer sums and the sort key (f_measure descending,
    then [Predictor.compare]) is a total order over distinct
    predictors. *)
module Acc : sig
  type t

  val create : unit -> t

  (** Number of observations folded in so far. *)
  val observations : t -> int

  (** Fold one run's observation into the counters (predictor list is
      deduplicated, as in {!rank}). *)
  val add : t -> observation -> unit

  (** [merge ~into src] folds [src]'s counters into [into]; [src] is
      unchanged.  Used to combine per-worker accumulators. *)
  val merge : into:t -> t -> unit

  (** The accumulator as a deterministic value, for snapshot codecs:
      [(cells, total_failing, n_obs)] with cells sorted by
      [Predictor.compare] — the same counts always export to the same
      list whatever the accumulation order. *)
  val export : t -> (Predictor.t * (int * int * int)) list * int * int

  (** Rebuild an accumulator from {!export}'s output; every query on
      the result is identical to the original. *)
  val import :
    cells:(Predictor.t * (int * int * int)) list ->
    total_failing:int -> n_obs:int -> t

  val rank : ?beta:float -> t -> ranked list

  (** The sequential stopping test: [Some p] when the top-ranked
      predictor [p]'s F_beta lower confidence bound (error rate
      [delta], {!f_interval}) strictly exceeds the upper bound of
      every rival with different counts — the ranking cannot flip
      within the stated confidence, so gathering more reports is
      unlikely to change the answer.  Rivals that held in exactly the
      runs the leader held in (equal counts and equal co-occurrence
      fingerprint) are the same evidence class (coupled predictors
      mined from one mechanism co-occur in every run); they are
      ordered by the deterministic tie-break, not by data, and do not
      block separation.  Coincidental ties — equal counts over
      different runs — do block, since more evidence can still part
      them.  [None] below the evidence floor (fewer than 2 failing
      runs overall, fewer than 3 runs where the leader held, or fewer
      than 2 {e failing} runs where the leader held — a leader with no
      failing evidence of its own must never separate vacuously).

      A pure function of the accumulated counters: any accumulation
      or merge order that yields the same counts yields the same
      verdict (qcheck-tested), so checkpoint decisions are
      bit-identical under chunked parallel ingest. *)
  val separated : ?beta:float -> ?delta:float -> t -> Predictor.t option
end

(** The sketch shows the best predictor {e per category} (branches,
    data values, statement orders), §3.3. *)
val best_per_kind : ranked list -> ranked list

val pp_ranked : Format.formatter -> ranked -> unit
