(** Statistical ranking of failure predictors (paper §3.3).

    precision P = |failing runs where the predictor held| /
                  |runs where it held|;
    recall    R = |failing runs where it held| / |failing runs|.

    Predictors are ranked by F_beta, the weighted harmonic mean of P
    and R; Gist sets beta = 0.5, favouring precision, "because its
    primary aim is to not confuse developers with potentially erroneous
    failure predictors". *)

(** One monitored run: the predictors that held and whether the run
    failed (with the target signature). *)
type observation = { predictors : Predictor.t list; failing : bool }

type ranked = {
  predictor : Predictor.t;
  precision : float;
  recall : float;
  f_measure : float;
  n_failing_with : int;
  n_success_with : int;
}

val beta_default : float

val f_measure : ?beta:float -> precision:float -> recall:float -> unit -> float

(** Rank all predictors, best first (F-measure, deterministic
    tie-break).  Each observation's predictor list is deduplicated. *)
val rank : ?beta:float -> observation list -> ranked list

(** Per-predictor sufficient statistics: the streaming replacement for
    retaining observations.  Holds (failing-with, success-with)
    counters per predictor plus the failing-run total — O(predictors)
    state, not O(runs).

    {!Acc.rank} is bit-identical to {!rank} over the same
    observations in any accumulation or merge order: the counts are
    commutative integer sums and the sort key (f_measure descending,
    then [Predictor.compare]) is a total order over distinct
    predictors. *)
module Acc : sig
  type t

  val create : unit -> t

  (** Number of observations folded in so far. *)
  val observations : t -> int

  (** Fold one run's observation into the counters (predictor list is
      deduplicated, as in {!rank}). *)
  val add : t -> observation -> unit

  (** [merge ~into src] folds [src]'s counters into [into]; [src] is
      unchanged.  Used to combine per-worker accumulators. *)
  val merge : into:t -> t -> unit

  val rank : ?beta:float -> t -> ranked list
end

(** The sketch shows the best predictor {e per category} (branches,
    data values, statement orders), §3.3. *)
val best_per_kind : ranked list -> ranked list

val pp_ranked : Format.formatter -> ranked -> unit
