(** Statistical ranking of failure predictors (paper §3.3).

    precision P = |failing runs where the predictor held| /
                  |runs where it held|;
    recall    R = |failing runs where it held| / |failing runs|.

    Predictors are ranked by F_beta, the weighted harmonic mean of P
    and R; Gist sets beta = 0.5, favouring precision, "because its
    primary aim is to not confuse developers with potentially erroneous
    failure predictors". *)

(** One monitored run: the predictors that held and whether the run
    failed (with the target signature). *)
type observation = { predictors : Predictor.t list; failing : bool }

type ranked = {
  predictor : Predictor.t;
  precision : float;
  recall : float;
  f_measure : float;
  n_failing_with : int;
  n_success_with : int;
}

val beta_default : float

val f_measure : ?beta:float -> precision:float -> recall:float -> unit -> float

(** Rank all predictors, best first (F-measure, deterministic
    tie-break).  Each observation's predictor list is deduplicated. *)
val rank : ?beta:float -> observation list -> ranked list

(** The sketch shows the best predictor {e per category} (branches,
    data values, statement orders), §3.3. *)
val best_per_kind : ranked list -> ranked list

val pp_ranked : Format.formatter -> ranked -> unit
