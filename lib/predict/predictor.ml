(* Failure predictors (paper §3.3).

   For sequential programs: branches taken and data values computed.
   For multithreaded programs, additionally the single-variable
   atomicity-violation patterns of Fig. 5 (RWR, WWR, RWW, WRW) and the
   data-race / order-violation patterns (WW, WR, RW).

   A predictor is identified by the program statements involved, so
   that two different interleavings over the same variable count as
   different predictors (this is what lets Gist distinguish failure
   kinds where PBI/CCI cannot, §3.3). *)

open Ir.Types


let rw_char = function Exec.Interp.Read -> 'R' | Exec.Interp.Write -> 'W'

type t =
  | Branch_taken of iid * bool
  | Data_value of iid * string            (* statement, observed value *)
  | Value_range of iid * string           (* statement, predicate: "<0", ... *)
  | Race of string * iid * iid            (* "WW"/"WR"/"RW", the two statements *)
  | Atomicity of string * iid * iid * iid (* "RWR"/"WWR"/"RWW"/"WRW" *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let kind_name = function
  | Branch_taken _ -> "branch"
  | Data_value _ -> "value"
  | Value_range _ -> "range"
  | Race _ -> "race"
  | Atomicity _ -> "atomicity"

let pp ppf = function
  | Branch_taken (iid, taken) ->
    Fmt.pf ppf "branch@%d %s" iid (if taken then "taken" else "not-taken")
  | Data_value (iid, v) -> Fmt.pf ppf "value@%d = %s" iid v
  | Value_range (iid, pred) -> Fmt.pf ppf "value@%d %s" iid pred
  | Race (pat, a, b) -> Fmt.pf ppf "%s race: @%d -> @%d" pat a b
  | Atomicity (pat, a, b, c) ->
    Fmt.pf ppf "%s atomicity violation: @%d, @%d, @%d" pat a b c

let to_string p = Fmt.str "%a" pp p

(* ------------------------------------------------------------------ *)
(* Extraction from one monitored run. *)

(* Branch predictors from decoded PT outcomes, restricted to tracked
   statements.  A branch that went both ways in one run yields both
   predictors (each is a predicate "this branch took this outcome at
   least once in the run"). *)
let of_branches ~tracked outcomes =
  List.filter_map
    (fun (iid, taken) ->
      if List.mem iid tracked then Some (Branch_taken (iid, taken)) else None)
    outcomes
  |> List.sort_uniq compare

(* Data-value predictors from watchpoint traps. *)
let of_values (traps : Hw.Watchpoint.trap list) =
  List.map
    (fun (t : Hw.Watchpoint.trap) ->
      Data_value (t.w_iid, Exec.Value.to_string t.w_value))
    traps
  |> List.sort_uniq compare

(* Concurrency patterns from the totally ordered watchpoint trap log.
   For each address, consecutive accesses from different threads form
   race patterns; triples t1-t2-t1 form the Fig. 5 atomicity patterns. *)
let of_traps (traps : Hw.Watchpoint.trap list) =
  let by_addr = Hashtbl.create 8 in
  List.iter
    (fun (t : Hw.Watchpoint.trap) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_addr t.w_addr) in
      Hashtbl.replace by_addr t.w_addr (t :: cur))
    traps;
  (* The paper's pattern sets: races WW/WR/RW (read-read is no race)
     and the four Fig. 5 single-variable atomicity violations. *)
  let race_patterns = [ "WW"; "WR"; "RW" ] in
  let atomicity_patterns = [ "RWR"; "WWR"; "RWW"; "WRW" ] in
  let found = ref [] in
  Hashtbl.iter
    (fun _addr rev_accesses ->
      let accesses = List.rev rev_accesses in
      let rec scan = function
        | (a : Hw.Watchpoint.trap) :: (b :: _ as rest) ->
          if a.w_tid <> b.w_tid then begin
            let pat = Printf.sprintf "%c%c" (rw_char a.w_rw) (rw_char b.w_rw) in
            if List.mem pat race_patterns then
              found := Race (pat, a.w_iid, b.w_iid) :: !found;
            (match rest with
             | _ :: c :: _ when c.w_tid = a.w_tid && c.w_tid <> b.w_tid ->
               let pat3 =
                 Printf.sprintf "%c%c%c" (rw_char a.w_rw) (rw_char b.w_rw)
                   (rw_char c.w_rw)
               in
               if List.mem pat3 atomicity_patterns then
                 found := Atomicity (pat3, a.w_iid, b.w_iid, c.w_iid) :: !found
             | _ -> ())
          end;
          scan rest
        | _ -> ()
      in
      scan accesses)
    by_addr;
  List.sort_uniq compare !found

(* Range/inequality predicates over observed data values: the richer
   value predictors the paper lists as future work (§6).  Exact values
   can fragment the statistics (every failing run leaks a different
   negative count); sign and null predicates unify them, trading a
   little informativeness for recall. *)
let range_predicates (v : Exec.Value.t) =
  match v with
  | Exec.Value.VInt n ->
    (if n < 0 then [ "< 0" ] else if n > 0 then [ "> 0" ] else [ "== 0" ])
  | Exec.Value.VNull -> [ "== NULL" ]
  | Exec.Value.VPtr _ -> [ "!= NULL" ]
  | Exec.Value.VStr _ | Exec.Value.VTid _ | Exec.Value.VUnit -> []

let of_value_ranges (traps : Hw.Watchpoint.trap list) =
  List.concat_map
    (fun (t : Hw.Watchpoint.trap) ->
      List.map (fun p -> Value_range (t.w_iid, p)) (range_predicates t.w_value))
    traps
  |> List.sort_uniq compare

(* All predictors observable in one run.  [ranges] additionally mines
   the §6 range/inequality predicates (an extension over the paper's
   prototype, which "simply tracks data values themselves"). *)
let of_run ?(ranges = false) ~tracked ~branch_outcomes ~traps () =
  of_branches ~tracked branch_outcomes
  @ of_values traps
  @ (if ranges then of_value_ranges traps else [])
  @ of_traps traps
  |> List.sort_uniq compare
