(** Failure predictors (paper §3.3).

    For sequential programs: branches taken and data values computed.
    For multithreaded programs, additionally the single-variable
    atomicity-violation patterns of Fig. 5 (RWR, WWR, RWW, WRW) and the
    data-race / order-violation patterns (WW, WR, RW).

    A predictor is identified by the program statements involved, so
    two different interleavings over the same variable are different
    predictors — what lets Gist distinguish failure kinds where
    PBI/CCI cannot (§3.3). *)

open Ir.Types

type t =
  | Branch_taken of iid * bool
  | Data_value of iid * string             (** statement, observed value *)
  | Value_range of iid * string
      (** statement, range/inequality predicate ("< 0", "== NULL", ...):
          the richer value predictors of the paper's §6 future work *)
  | Race of string * iid * iid             (** "WW"/"WR"/"RW" + statements *)
  | Atomicity of string * iid * iid * iid  (** "RWR"/"WWR"/"RWW"/"WRW" *)

val compare : t -> t -> int
val equal : t -> t -> bool

(** Category label: "branch", "value", "range", "race" or
    "atomicity". *)
val kind_name : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Branch predictors from decoded PT outcomes, restricted to tracked
    statements. *)
val of_branches : tracked:iid list -> (iid * bool) list -> t list

(** Data-value predictors from watchpoint traps. *)
val of_values : Hw.Watchpoint.trap list -> t list

(** Concurrency patterns from the totally ordered trap log: per
    address, consecutive accesses from different threads form the race
    patterns; t1-t2-t1 triples form the Fig. 5 atomicity patterns. *)
val of_traps : Hw.Watchpoint.trap list -> t list

(** The range/inequality predicates a value satisfies ("< 0", "> 0",
    "== 0", "== NULL", "!= NULL"; none for strings/handles). *)
val range_predicates : Exec.Value.t -> string list

(** Range predicates observed in one run's trap log. *)
val of_value_ranges : Hw.Watchpoint.trap list -> t list

(** All predictors observable in one monitored run, deduplicated.
    [ranges] (default false, the paper's behaviour) additionally mines
    the §6 range/inequality predicates. *)
val of_run :
  ?ranges:bool ->
  tracked:iid list ->
  branch_outcomes:(iid * bool) list ->
  traps:Hw.Watchpoint.trap list ->
  unit ->
  t list
