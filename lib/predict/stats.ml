(* Statistical ranking of failure predictors (paper §3.3).

   precision P = |failing runs where the predictor held| /
                 |runs where the predictor held|
   recall    R = |failing runs where the predictor held| / |failing runs|

   Predictors are ranked by F_beta, the weighted harmonic mean of P and
   R; Gist sets beta = 0.5, favouring precision, "because its primary
   aim is to not confuse developers with potentially erroneous failure
   predictors". *)

type observation = { predictors : Predictor.t list; failing : bool }

type ranked = {
  predictor : Predictor.t;
  precision : float;
  recall : float;
  f_measure : float;
  n_failing_with : int;
  n_success_with : int;
}

let beta_default = 0.5

let f_measure ?(beta = beta_default) ~precision ~recall () =
  let b2 = beta *. beta in
  let num = (1.0 +. b2) *. precision *. recall in
  let den = (b2 *. precision) +. recall in
  if den = 0.0 then 0.0 else num /. den

let rank ?(beta = beta_default) (observations : observation list) =
  let total_failing =
    List.length (List.filter (fun o -> o.failing) observations)
  in
  let counts : (Predictor.t, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun o ->
      (* A predictor either held in a run or did not: dedup defensively
         so callers cannot inflate counts past the run count. *)
      List.iter
        (fun p ->
          let f, s = Option.value ~default:(0, 0) (Hashtbl.find_opt counts p) in
          let cell = if o.failing then (f + 1, s) else (f, s + 1) in
          Hashtbl.replace counts p cell)
        (List.sort_uniq Predictor.compare o.predictors))
    observations;
  Hashtbl.fold
    (fun predictor (f, s) acc ->
      let precision =
        if f + s = 0 then 0.0 else float_of_int f /. float_of_int (f + s)
      in
      let recall =
        if total_failing = 0 then 0.0
        else float_of_int f /. float_of_int total_failing
      in
      {
        predictor;
        precision;
        recall;
        f_measure = f_measure ~beta ~precision ~recall ();
        n_failing_with = f;
        n_success_with = s;
      }
      :: acc)
    counts []
  |> List.sort (fun a b ->
      match compare b.f_measure a.f_measure with
      | 0 -> Predictor.compare a.predictor b.predictor (* deterministic ties *)
      | c -> c)

(* ------------------------------------------------------------------ *)
(* Acc: per-predictor sufficient statistics.

   [rank] needs only (failing-with, success-with) per predictor plus
   the failing-run total -- counters, not observations.  The streaming
   server folds each accepted report into an accumulator the moment
   validation passes and retains nothing else, so ranking state is
   O(predictors in the slice), not O(fleet).

   Equivalence with [rank] is exact, not approximate: the counts are
   commutative integer sums, precision/recall derive from identical
   integers, and the final sort key (f_measure desc, then
   [Predictor.compare]) is a total order over distinct predictors --
   so [Acc.rank] is bit-identical to [rank] over the same
   observations, in any accumulation or merge order.  The retained
   path stays in the tree as the reference oracle (differential-tested
   like [Exec.Refinterp]). *)

module Acc = struct
  type t = {
    counts : (Predictor.t, int * int) Hashtbl.t;
        (* predictor -> (failing-with, success-with) *)
    mutable total_failing : int;
    mutable n_obs : int;
  }

  let create () = { counts = Hashtbl.create 64; total_failing = 0; n_obs = 0 }

  let observations t = t.n_obs

  let add t { predictors; failing } =
    t.n_obs <- t.n_obs + 1;
    if failing then t.total_failing <- t.total_failing + 1;
    (* Same defensive dedup as [rank]: a predictor either held in a
       run or did not. *)
    List.iter
      (fun p ->
        let f, s = Option.value ~default:(0, 0) (Hashtbl.find_opt t.counts p) in
        let cell = if failing then (f + 1, s) else (f, s + 1) in
        Hashtbl.replace t.counts p cell)
      (List.sort_uniq Predictor.compare predictors)

  (* Fold [src] into [dst].  Integer sums commute, so any merge order
     yields the same accumulator. *)
  let merge ~into:dst src =
    dst.n_obs <- dst.n_obs + src.n_obs;
    dst.total_failing <- dst.total_failing + src.total_failing;
    Hashtbl.iter
      (fun p (f, s) ->
        let f0, s0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt dst.counts p)
        in
        Hashtbl.replace dst.counts p (f0 + f, s0 + s))
      src.counts

  let rank ?(beta = beta_default) t =
    Hashtbl.fold
      (fun predictor (f, s) acc ->
        let precision =
          if f + s = 0 then 0.0 else float_of_int f /. float_of_int (f + s)
        in
        let recall =
          if t.total_failing = 0 then 0.0
          else float_of_int f /. float_of_int t.total_failing
        in
        {
          predictor;
          precision;
          recall;
          f_measure = f_measure ~beta ~precision ~recall ();
          n_failing_with = f;
          n_success_with = s;
        }
        :: acc)
      t.counts []
    |> List.sort (fun a b ->
        match compare b.f_measure a.f_measure with
        | 0 -> Predictor.compare a.predictor b.predictor
        | c -> c)
end

(* The sketch shows the highest-ranked predictor *per category*
   (branches, data values, statement orders), §3.3. *)
let best_per_kind ranked =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun r ->
      let k = Predictor.kind_name r.predictor in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ranked

let pp_ranked ppf r =
  Fmt.pf ppf "%a  (P=%.2f R=%.2f F=%.3f; %d fail / %d ok)" Predictor.pp
    r.predictor r.precision r.recall r.f_measure r.n_failing_with
    r.n_success_with
