(* Statistical ranking of failure predictors (paper §3.3).

   precision P = |failing runs where the predictor held| /
                 |runs where the predictor held|
   recall    R = |failing runs where the predictor held| / |failing runs|

   Predictors are ranked by F_beta, the weighted harmonic mean of P and
   R; Gist sets beta = 0.5, favouring precision, "because its primary
   aim is to not confuse developers with potentially erroneous failure
   predictors". *)

type observation = { predictors : Predictor.t list; failing : bool }

type ranked = {
  predictor : Predictor.t;
  precision : float;
  recall : float;
  f_measure : float;
  n_failing_with : int;
  n_success_with : int;
}

let beta_default = 0.5

let f_measure ?(beta = beta_default) ~precision ~recall () =
  let b2 = beta *. beta in
  let num = (1.0 +. b2) *. precision *. recall in
  let den = (b2 *. precision) +. recall in
  if den = 0.0 then 0.0 else num /. den

let rank ?(beta = beta_default) (observations : observation list) =
  let total_failing =
    List.length (List.filter (fun o -> o.failing) observations)
  in
  let counts : (Predictor.t, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun o ->
      (* A predictor either held in a run or did not: dedup defensively
         so callers cannot inflate counts past the run count. *)
      List.iter
        (fun p ->
          let f, s = Option.value ~default:(0, 0) (Hashtbl.find_opt counts p) in
          let cell = if o.failing then (f + 1, s) else (f, s + 1) in
          Hashtbl.replace counts p cell)
        (List.sort_uniq Predictor.compare o.predictors))
    observations;
  Hashtbl.fold
    (fun predictor (f, s) acc ->
      let precision =
        if f + s = 0 then 0.0 else float_of_int f /. float_of_int (f + s)
      in
      let recall =
        if total_failing = 0 then 0.0
        else float_of_int f /. float_of_int total_failing
      in
      {
        predictor;
        precision;
        recall;
        f_measure = f_measure ~beta ~precision ~recall ();
        n_failing_with = f;
        n_success_with = s;
      }
      :: acc)
    counts []
  |> List.sort (fun a b ->
      match compare b.f_measure a.f_measure with
      | 0 -> Predictor.compare a.predictor b.predictor (* deterministic ties *)
      | c -> c)

(* ------------------------------------------------------------------ *)
(* Confidence bounds on F_beta (PR 7: the adaptive early-exit stopping
   rule).

   Precision and recall are both binomial proportions: precision over
   the runs where the predictor held (f successes in f + s trials),
   recall over the failing runs (f successes in total_failing trials).
   Each gets a Wilson score interval at error rate [delta]; F_beta is
   monotone increasing in both precision and recall (dF/dp and dF/dr
   are non-negative everywhere on [0,1]^2), so
   [F(p_lo, r_lo), F(p_hi, r_hi)] is a conservative interval on F_beta
   itself.

   Monotonicity: the Wilson half-width at a fixed observed rate
   strictly shrinks as trials grow, so gathering more reports that
   confirm the observed rates never widens the interval -- the
   property the early-exit checkpoints rely on (qcheck-tested in
   test_predict.ml). *)

let delta_default = 0.05

(* Inverse standard-normal CDF (Acklam's rational approximation,
   ~1.15e-9 relative error): the z with Phi(z) = p.  Self-contained so
   the bound needs no numerics dependency. *)
let norm_ppf p =
  if p <= 0.0 then neg_infinity
  else if p >= 1.0 then infinity
  else begin
    let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02 in
    let a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02 in
    let a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
    let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02 in
    let b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01 in
    let b4 = -1.328068155288572e+01 in
    let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01 in
    let c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00 in
    let c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
    let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01 in
    let d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
    let p_low = 0.02425 in
    let tail q =
      (((((c0 *. q +. c1) *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5)
      /. ((((d0 *. q +. d1) *. q +. d2) *. q +. d3) *. q +. 1.0)
    in
    if p < p_low then tail (sqrt (-2.0 *. log p))
    else if p <= 1.0 -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a0 *. r +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5)
      *. q
      /. (((((b0 *. r +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.0)
    else -.tail (sqrt (-2.0 *. log (1.0 -. p)))
  end

let z_of_delta delta = norm_ppf (1.0 -. (delta /. 2.0))

let wilson_interval ?(delta = delta_default) ~successes ~trials () =
  if trials <= 0 then (0.0, 1.0)
  else begin
    let z = z_of_delta delta in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let spread =
      z *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    ( max 0.0 ((centre -. spread) /. denom),
      min 1.0 ((centre +. spread) /. denom) )
  end

let f_interval ?(beta = beta_default) ?(delta = delta_default)
    ~n_failing_with ~n_success_with ~total_failing () =
  let p_lo, p_hi =
    wilson_interval ~delta ~successes:n_failing_with
      ~trials:(n_failing_with + n_success_with) ()
  in
  let r_lo, r_hi =
    wilson_interval ~delta ~successes:n_failing_with ~trials:total_failing ()
  in
  ( f_measure ~beta ~precision:p_lo ~recall:r_lo (),
    f_measure ~beta ~precision:p_hi ~recall:r_hi () )

(* ------------------------------------------------------------------ *)
(* Acc: per-predictor sufficient statistics.

   [rank] needs only (failing-with, success-with) per predictor plus
   the failing-run total -- counters, not observations.  The streaming
   server folds each accepted report into an accumulator the moment
   validation passes and retains nothing else, so ranking state is
   O(predictors in the slice), not O(fleet).

   Equivalence with [rank] is exact, not approximate: the counts are
   commutative integer sums, precision/recall derive from identical
   integers, and the final sort key (f_measure desc, then
   [Predictor.compare]) is a total order over distinct predictors --
   so [Acc.rank] is bit-identical to [rank] over the same
   observations, in any accumulation or merge order.  The retained
   path stays in the tree as the reference oracle (differential-tested
   like [Exec.Refinterp]). *)

module Acc = struct
  (* Per-predictor cell: the two counters [rank] needs, plus a
     commutative co-occurrence fingerprint for [separated]'s
     tie-class test.  [cooc] is the wrapping sum, over the runs where
     the predictor held, of an order-independent hash of each run's
     full observation — so two predictors accumulate equal [cooc]
     values iff (w.h.p.) they held in exactly the same multiset of
     runs.  A sum of per-run hashes commutes, so the fingerprint is
     identical under any accumulation or merge order, like the
     counters themselves. *)
  type cell = { c_fail : int; c_succ : int; c_cooc : int }

  let cell0 = { c_fail = 0; c_succ = 0; c_cooc = 0 }

  type t = {
    counts : (Predictor.t, cell) Hashtbl.t;
    mutable total_failing : int;
    mutable n_obs : int;
  }

  let create () = { counts = Hashtbl.create 64; total_failing = 0; n_obs = 0 }

  let observations t = t.n_obs

  (* Order-independent run fingerprint: each predictor's structural
     hash, scrambled so distinct sets do not collide by simple sums,
     then summed with the outcome bit folded in. *)
  let scramble h =
    let h = h * 0x9E3779B97F4A7C1 in
    h lxor (h lsr 29)

  let obs_fingerprint ~failing preds =
    List.fold_left
      (fun acc p -> acc + scramble (Hashtbl.hash p))
      (if failing then 0x2545F4914F6CDD1 else 1)
      preds

  let add t { predictors; failing } =
    t.n_obs <- t.n_obs + 1;
    if failing then t.total_failing <- t.total_failing + 1;
    (* Same defensive dedup as [rank]: a predictor either held in a
       run or did not. *)
    let preds = List.sort_uniq Predictor.compare predictors in
    let key = obs_fingerprint ~failing preds in
    List.iter
      (fun p ->
        let c = Option.value ~default:cell0 (Hashtbl.find_opt t.counts p) in
        let c =
          if failing then
            { c with c_fail = c.c_fail + 1; c_cooc = c.c_cooc + key }
          else { c with c_succ = c.c_succ + 1; c_cooc = c.c_cooc + key }
        in
        Hashtbl.replace t.counts p c)
      preds

  (* Fold [src] into [dst].  Integer sums commute (the fingerprint
     included), so any merge order yields the same accumulator. *)
  let merge ~into:dst src =
    dst.n_obs <- dst.n_obs + src.n_obs;
    dst.total_failing <- dst.total_failing + src.total_failing;
    Hashtbl.iter
      (fun p c ->
        let c0 = Option.value ~default:cell0 (Hashtbl.find_opt dst.counts p) in
        Hashtbl.replace dst.counts p
          {
            c_fail = c0.c_fail + c.c_fail;
            c_succ = c0.c_succ + c.c_succ;
            c_cooc = c0.c_cooc + c.c_cooc;
          })
      src.counts

  let rank ?(beta = beta_default) t =
    Hashtbl.fold
      (fun predictor { c_fail = f; c_succ = s; _ } acc ->
        let precision =
          if f + s = 0 then 0.0 else float_of_int f /. float_of_int (f + s)
        in
        let recall =
          if t.total_failing = 0 then 0.0
          else float_of_int f /. float_of_int t.total_failing
        in
        {
          predictor;
          precision;
          recall;
          f_measure = f_measure ~beta ~precision ~recall ();
          n_failing_with = f;
          n_success_with = s;
        }
        :: acc)
      t.counts []
    |> List.sort (fun a b ->
        match compare b.f_measure a.f_measure with
        | 0 -> Predictor.compare a.predictor b.predictor
        | c -> c)

  (* Snapshot codec support: the accumulator as a deterministic value.
     Cells come out sorted by [Predictor.compare], so the same counts
     always serialize to the same bytes whatever the hashtable's
     internal order; [import] rebuilds an accumulator that is
     indistinguishable from the original (every query is a pure
     function of the counts). *)
  let export t =
    let cells =
      Hashtbl.fold (fun p c acc -> (p, (c.c_fail, c.c_succ, c.c_cooc)) :: acc)
        t.counts []
      |> List.sort (fun (p, _) (q, _) -> Predictor.compare p q)
    in
    (cells, t.total_failing, t.n_obs)

  let import ~cells ~total_failing ~n_obs =
    let t = create () in
    List.iter
      (fun (p, (c_fail, c_succ, c_cooc)) ->
        Hashtbl.replace t.counts p { c_fail; c_succ; c_cooc })
      cells;
    t.total_failing <- total_failing;
    t.n_obs <- n_obs;
    t

  (* Evidence floors for [separated]: below these the intervals are
     near-vacuous anyway, but the explicit floor keeps the very first
     reports of a diagnosis from "separating" a lone predictor before
     watchpoint rotation has had a chance to surface competitors. *)
  let min_failing_for_separation = 2
  let min_trials_for_separation = 3

  let separated ?(beta = beta_default) ?(delta = delta_default) t =
    if t.total_failing < min_failing_for_separation then None
    else
      match rank ~beta t with
      | [] -> None
      | best :: rest ->
        if
          best.n_failing_with + best.n_success_with
            < min_trials_for_separation
          (* The leader itself must carry failing evidence: with no
             rivals (or only weak ones) a predictor seen in zero or
             one failing run would "separate" vacuously -- e.g. the
             sole predictor mined so far, observed only in successes. *)
          || best.n_failing_with < min_failing_for_separation
        then None
        else begin
          let lo, _ =
            f_interval ~beta ~delta ~n_failing_with:best.n_failing_with
              ~n_success_with:best.n_success_with
              ~total_failing:t.total_failing ()
          in
          (* A leader with perfect counts so far (held in every
             failing run, never in a success) fully identifies its
             pairing with any rival on the same run sequence: the
             rival's failing occurrences are a subset of the leader's,
             and every rival success is a run the leader sat out -- so
             every discordant run favours the leader, and the exact
             one-sided sign test (McNemar) applies with
             p = 2^-(discordant runs).  This sharpens the interval
             test exactly where it is weakest: tiny samples where a
             rival's own perfect-precision interval still reaches
             F ~ 1. *)
          let perfect =
            best.n_failing_with = t.total_failing
            && best.n_success_with = 0
          in
          (* A rival blocks separation unless one of:
             - same evidence class: identical counts AND the same
               co-occurrence fingerprint, i.e. it held in exactly the
               runs the leader held in.  Coupled predictors mined from
               one mechanism co-occur in every run, so no amount of
               data can tell them apart and the deterministic
               F-then-predictor tie-break orders them identically in
               both modes.  The fingerprint is what separates them
               from coincidental ties -- two predictors with equal
               counts over *different* runs (e.g. two values of one
               variable, each seen in its own failing subset) can
               still diverge as evidence accrues, so they block;
             - its F upper bound sits below the leader's lower bound;
             - the exact sign test rejects it at [delta]. *)
          let cooc_of p =
            (Option.value ~default:cell0 (Hashtbl.find_opt t.counts p)).c_cooc
          in
          let best_cooc = cooc_of best.predictor in
          let blocked (r : ranked) =
            if
              r.n_failing_with = best.n_failing_with
              && r.n_success_with = best.n_success_with
              && cooc_of r.predictor = best_cooc
            then false
            else
              let _, hi =
                f_interval ~beta ~delta ~n_failing_with:r.n_failing_with
                  ~n_success_with:r.n_success_with
                  ~total_failing:t.total_failing ()
              in
              if hi < lo then false
              else if perfect then
                let discordant =
                  best.n_failing_with - r.n_failing_with + r.n_success_with
                in
                0.5 ** float_of_int discordant > delta
              else true
          in
          if List.exists blocked rest then None else Some best.predictor
        end
end

(* The sketch shows the highest-ranked predictor *per category*
   (branches, data values, statement orders), §3.3. *)
let best_per_kind ranked =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun r ->
      let k = Predictor.kind_name r.predictor in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ranked

let pp_ranked ppf r =
  Fmt.pf ppf "%a  (P=%.2f R=%.2f F=%.3f; %d fail / %d ok)" Predictor.pp
    r.predictor r.precision r.recall r.f_measure r.n_failing_with
    r.n_success_with
