(** Systematic schedule exploration with iterative context bounding (in
    the spirit of CHESS, cited by the paper for Heisenbug
    reproduction).

    Gist samples production schedules; this module {e enumerates}
    schedules with at most a given number of preemptions at
    shared-memory/synchronisation points, which lets tests prove a race
    is reachable within a bound — or that no failing schedule exists
    within it. *)

(** One run under a forced schedule prefix (non-preemptive beyond it). *)
type probe = {
  p_result : Interp.result;
  p_choices : int array;                (** tid chosen at every step *)
  p_expansions : (int * int list) list; (** preemption points and alternatives *)
}

val run_prefix :
  ?max_steps:int -> Ir.Types.program -> Interp.workload -> int array -> probe

type exploration = {
  schedules_run : int;
  truncated : bool;  (** the schedule budget ran out before the bound *)
  outcomes : (Failure.signature option * int) list;
      (** outcome (None = success) -> number of schedules *)
  witnesses : (Failure.signature * int array) list;
      (** first witness schedule per distinct failure *)
}

val explore :
  ?max_preemptions:int -> ?max_schedules:int -> ?max_steps:int ->
  Ir.Types.program -> Interp.workload -> exploration

(** First schedule (in deterministic DFS order) whose failure satisfies
    [pred]. *)
val find :
  ?max_preemptions:int -> ?max_schedules:int -> ?max_steps:int ->
  pred:(Failure.report -> bool) ->
  Ir.Types.program -> Interp.workload ->
  (Failure.report * int array) option

(** Re-execute a witness schedule; determinism reproduces the outcome. *)
val replay :
  ?max_steps:int -> Ir.Types.program -> Interp.workload -> int array ->
  Interp.result
