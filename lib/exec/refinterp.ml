(* The reference interpreter: the original nominal engine, executing
   [Ir.Types.program] directly — string-keyed register Hashtbls, label
   scans in [goto], string-matched builtins.

   [Interp.run] now executes the lowered form ([Ir.Lowered]); this
   module preserves the pre-lowering semantics verbatim so the
   differential test (test/test_differential.ml) can prove the two
   engines bit-identical — outcomes, outputs, access sequences, RNG
   draws, scheduler choices, hook firings and counters — on every
   Bugbase program and on randomly generated ones.  It is not used on
   any production path. *)

open Ir.Types
open Value
open Interp
(* [Interp] provides the shared observable types: [rw], [pre_ctx],
   [hooks], [workload], [access], [outcome], [result]. *)

(* ------------------------------------------------------------------ *)

type frame = {
  func : func;
  mutable blk : int;
  mutable idx : int;
  regs : (string, Value.t) Hashtbl.t;
  ret_dst : reg option;
}

type status =
  | Runnable
  | Blocked_lock of int
  | Blocked_join of int
  | Finished

type thread = {
  tid : int;
  mutable frames : frame list; (* innermost first *)
  mutable status : status;
}

exception Crash of Failure.kind * string
exception Crash_report of Failure.report

type state = {
  program : program;
  mem : Memory.t;
  globals : (string, int) Hashtbl.t; (* name -> address *)
  locks : (int, int option) Hashtbl.t; (* lock addr -> holder tid *)
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  rng : Rng.t;
  counters : Cost.t;
  mutable out : string list;
  mutable seq : int;
  mutable gt_accesses : access list;
  mutable gt_executed : (int * iid) list;
  record_gt : bool;
  hooks : hooks;
  preempt_prob : float;
}

let crash kind msg = raise (Crash (kind, msg))

let frame_of t =
  match t.frames with
  | f :: _ -> f
  | [] -> crash (Type_error "no frame") (Printf.sprintf "thread %d" t.tid)

let current_instr t =
  match t.frames with
  | [] -> None
  | f :: _ -> Some f.func.blocks.(f.blk).instrs.(f.idx)

let stack_trace t = List.map (fun f -> f.func.fname) t.frames

let eval_operand fr = function
  | Imm n -> VInt n
  | Str s -> VStr s
  | Null -> VNull
  | Reg r -> (
    match Hashtbl.find_opt fr.regs r with
    | Some v -> v
    | None -> crash (Type_error ("unbound register " ^ r)) r)

let as_int = function
  | VInt n -> n
  | VNull -> 0
  | v -> crash (Type_error "expected int") (Value.to_string v)

let eval_binop op a b =
  let bool_v c = VInt (if c then 1 else 0) in
  match (op, a, b) with
  | Eq, _, _ -> bool_v (Value.equal a b)
  | Ne, _, _ -> bool_v (not (Value.equal a b))
  | And, _, _ -> bool_v (truthy a && truthy b)
  | Or, _, _ -> bool_v (truthy a || truthy b)
  | Add, VPtr p, VInt n | Add, VInt n, VPtr p -> VPtr (p + n)
  | Sub, VPtr p, VInt n -> VPtr (p - n)
  | Sub, VPtr p, VPtr q -> VInt (p - q)
  | Add, VStr s, VStr u -> VStr (s ^ u)
  | (Lt | Le | Gt | Ge), VPtr p, VPtr q ->
    let c = compare p q in
    bool_v
      (match op with
       | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
       | _ -> assert false)
  | _ ->
    let x = as_int a and y = as_int b in
    (match op with
     | Add -> VInt (x + y)
     | Sub -> VInt (x - y)
     | Mul -> VInt (x * y)
     | Div -> if y = 0 then crash Div_by_zero "" else VInt (x / y)
     | Mod -> if y = 0 then crash Div_by_zero "" else VInt (x mod y)
     | Lt -> bool_v (x < y)
     | Le -> bool_v (x <= y)
     | Gt -> bool_v (x > y)
     | Ge -> bool_v (x >= y)
     | Eq | Ne | And | Or -> assert false)

let eval_expr fr = function
  | Bin (op, a, b) -> eval_binop op (eval_operand fr a) (eval_operand fr b)
  | Mov a -> eval_operand fr a
  | Not a -> VInt (if truthy (eval_operand fr a) then 0 else 1)

(* Address of a memory operand, raising the right failure kind. *)
let resolve_addr base_v offset =
  match base_v with
  | VPtr a -> a + offset
  | VNull -> crash Segfault "null dereference"
  | v -> crash (Type_error "dereference of non-pointer") (Value.to_string v)

let mem_fail_to_crash op = function
  | Memory.Fail_segv -> crash Segfault op
  | Memory.Fail_uaf -> crash Use_after_free op
  | Memory.Fail_dfree -> crash Double_free op

let record_access st t i addr rw value =
  st.seq <- st.seq + 1;
  st.counters.mem_accesses <- st.counters.mem_accesses + 1;
  if st.record_gt then
    st.gt_accesses <-
      { a_seq = st.seq; a_tid = t.tid; a_iid = i.iid; a_addr = addr;
        a_rw = rw; a_value = value }
      :: st.gt_accesses;
  st.hooks.mem_access ~tid:t.tid ~instr:i ~addr ~rw ~value

let do_load st t i addr =
  match Memory.load st.mem addr with
  | Error e -> mem_fail_to_crash "load" e
  | Ok v ->
    record_access st t i addr Read v;
    v

let do_store st t i addr v =
  match Memory.store st.mem addr v with
  | Error e -> mem_fail_to_crash "store" e
  | Ok () -> record_access st t i addr Write v

let spawn_thread st routine args =
  let f = Ir.Program.find_func st.program routine in
  let regs = Hashtbl.create 8 in
  (try List.iter2 (fun p v -> Hashtbl.replace regs p v) f.params args
   with Invalid_argument _ ->
     crash (Type_error ("arity mismatch spawning " ^ routine)) "");
  let tid = st.next_tid in
  st.next_tid <- st.next_tid + 1;
  let fr = { func = f; blk = 0; idx = 0; regs; ret_dst = None } in
  Hashtbl.replace st.threads tid { tid; frames = [ fr ]; status = Runnable };
  tid

let set_reg fr r v = Hashtbl.replace fr.regs r v

let do_builtin st fr dst name args =
  let v : Value.t =
    match (name, args) with
    | "print", [ v ] ->
      st.out <- Value.to_string v :: st.out;
      VUnit
    | "print_int", [ v ] ->
      st.out <- string_of_int (as_int v) :: st.out;
      VUnit
    | ("strlen" | "input_len"), [ VStr s ] -> VInt (String.length s)
    | ("strlen" | "input_len"), [ VNull ] -> crash Segfault "strlen(NULL)"
    | ("strlen" | "input_len"), [ v ] ->
      crash (Type_error "strlen of non-string") (Value.to_string v)
    | "str_char", [ VStr s; i ] ->
      let k = as_int i in
      if k >= 0 && k < String.length s then VInt (Char.code s.[k])
      else VInt (-1)
    | "str_char", [ VNull; _ ] -> crash Segfault "str_char(NULL)"
    | "str_concat", [ VStr a; VStr b ] -> VStr (a ^ b)
    | "atoi", [ VStr s ] ->
      VInt (match int_of_string_opt (String.trim s) with Some n -> n | None -> 0)
    | "abs", [ v ] -> VInt (abs (as_int v))
    | "min", [ a; b ] -> VInt (min (as_int a) (as_int b))
    | "max", [ a; b ] -> VInt (max (as_int a) (as_int b))
    | ("yield" | "sleep"), _ -> VUnit
    | _ -> crash (Type_error ("bad builtin call " ^ name)) ""
  in
  match dst with Some r -> set_reg fr r v | None -> ()

let goto fr l =
  let rec find k =
    if k >= Array.length fr.func.blocks then
      crash (Type_error ("unknown label " ^ l)) ""
    else if fr.func.blocks.(k).label = l then k
    else find (k + 1)
  in
  fr.blk <- find 0;
  fr.idx <- 0

(* Execute one instruction of thread [t].  Blocking instructions leave
   the position unchanged and flip the thread status; the scheduler
   retries them when they become eligible again. *)
let exec_instr st t i =
  let fr = frame_of t in
  let advance () = fr.idx <- fr.idx + 1 in
  match i.kind with
  | Assign (r, e) ->
    set_reg fr r (eval_expr fr e);
    advance ()
  | Load (r, base, off) ->
    let addr = resolve_addr (eval_operand fr base) off in
    set_reg fr r (do_load st t i addr);
    advance ()
  | Store (base, off, v) ->
    let addr = resolve_addr (eval_operand fr base) off in
    do_store st t i addr (eval_operand fr v);
    advance ()
  | Load_global (r, g) ->
    let addr = Hashtbl.find st.globals g in
    set_reg fr r (do_load st t i addr);
    advance ()
  | Store_global (g, v) ->
    let addr = Hashtbl.find st.globals g in
    do_store st t i addr (eval_operand fr v);
    advance ()
  | Malloc (r, n) ->
    set_reg fr r (VPtr (Memory.alloc st.mem n));
    advance ()
  | Free p -> (
    match eval_operand fr p with
    | VPtr base -> (
      match Memory.free st.mem base with
      | Error e -> mem_fail_to_crash "free" e
      | Ok () -> advance ())
    | VNull -> advance () (* free(NULL) is a no-op, as in C *)
    | v -> crash (Type_error "free of non-pointer") (Value.to_string v))
  | Call (dst, callee, args) ->
    let f = Ir.Program.find_func st.program callee in
    let values = List.map (eval_operand fr) args in
    advance ();
    let regs = Hashtbl.create 8 in
    (try List.iter2 (fun p v -> Hashtbl.replace regs p v) f.params values
     with Invalid_argument _ ->
       crash (Type_error ("arity mismatch calling " ^ callee)) "");
    t.frames <- { func = f; blk = 0; idx = 0; regs; ret_dst = dst } :: t.frames
  | Builtin (dst, name, args) ->
    do_builtin st fr dst name (List.map (eval_operand fr) args);
    advance ()
  | Jmp l -> goto fr l
  | Branch (c, lt, le) ->
    let taken = truthy (eval_operand fr c) in
    st.counters.branches <- st.counters.branches + 1;
    st.hooks.branch ~tid:t.tid ~instr:i ~taken;
    goto fr (if taken then lt else le)
  | Ret v -> (
    let value = match v with Some op -> eval_operand fr op | None -> VUnit in
    let popped = fr in
    t.frames <- List.tl t.frames;
    match t.frames with
    | [] ->
      st.hooks.ret ~tid:t.tid ~instr:i ~resume:None;
      t.status <- Finished
    | caller :: _ ->
      let resume = caller.func.blocks.(caller.blk).instrs.(caller.idx).iid in
      st.hooks.ret ~tid:t.tid ~instr:i ~resume:(Some resume);
      (match popped.ret_dst with
       | Some r -> set_reg caller r value
       | None -> ()))
  | Spawn (r, routine, args) ->
    let values = List.map (eval_operand fr) args in
    let tid = spawn_thread st routine values in
    set_reg fr r (VTid tid);
    advance ()
  | Join target -> (
    match eval_operand fr target with
    | VTid tid -> (
      match Hashtbl.find_opt st.threads tid with
      | Some th when th.status <> Finished -> t.status <- Blocked_join tid
      | _ -> advance ())
    | v -> crash (Type_error "join of non-thread") (Value.to_string v))
  | Lock m -> (
    let addr =
      match eval_operand fr m with
      | VPtr a -> a
      | VNull -> crash Segfault "lock(NULL)"
      | v -> crash (Type_error "lock of non-pointer") (Value.to_string v)
    in
    (match Memory.check st.mem addr with
     | Error e -> mem_fail_to_crash "lock" e
     | Ok () -> ());
    match Hashtbl.find_opt st.locks addr with
    | Some (Some holder) when holder <> t.tid -> t.status <- Blocked_lock addr
    | _ ->
      Hashtbl.replace st.locks addr (Some t.tid);
      advance ())
  | Unlock m ->
    let addr =
      match eval_operand fr m with
      | VPtr a -> a
      | VNull -> crash Segfault "unlock(NULL)"
      | v -> crash (Type_error "unlock of non-pointer") (Value.to_string v)
    in
    (match Memory.check st.mem addr with
     | Error e -> mem_fail_to_crash "unlock" e
     | Ok () -> ());
    Hashtbl.replace st.locks addr None;
    advance ()
  | Assert (c, msg) ->
    if truthy (eval_operand fr c) then advance ()
    else crash (Assert_fail msg) msg

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let eligible st t =
  match t.status with
  | Runnable -> true
  | Finished -> false
  | Blocked_lock addr -> (
    match Hashtbl.find_opt st.locks addr with
    | Some (Some _) -> false
    | _ -> true)
  | Blocked_join tid -> (
    match Hashtbl.find_opt st.threads tid with
    | Some th -> th.status = Finished
    | None -> true)

(* Sorted array of runnable thread ids.  The scheduler indexes into it
   directly (this is the interpreter's innermost loop; [List.nth] here
   was a measurable share of every production run). *)
let eligible_tids st =
  let a =
    Array.of_list
      (Hashtbl.fold
         (fun tid t acc -> if eligible st t then tid :: acc else acc)
         st.threads [])
  in
  Array.sort compare a;
  a

let all_finished st =
  Hashtbl.fold (fun _ t acc -> acc && t.status = Finished) st.threads true

(* Scheduling points: shared-memory and synchronisation operations (the
   places where interleavings matter for the Fig. 5 patterns). *)
let interesting i =
  match i.kind with
  | Load _ | Store _ | Load_global _ | Store_global _ | Lock _ | Unlock _
  | Free _ | Join _ | Spawn _ ->
    true
  | Builtin (_, ("yield" | "sleep"), _) -> true
  | _ -> false

let is_yield i =
  match i.kind with Builtin (_, ("yield" | "sleep"), _) -> true | _ -> false

let run ?hooks ?counters ?pick ?(max_steps = 400_000) ?(record_gt = false)
    ?(preempt_prob = 0.35) program (w : workload) : result =
  let hooks = match hooks with Some h -> h | None -> no_hooks () in
  let counters = match counters with Some c -> c | None -> Cost.create () in
  let st =
    {
      program;
      mem = Memory.create ();
      globals = Hashtbl.create 16;
      locks = Hashtbl.create 16;
      threads = Hashtbl.create 8;
      next_tid = 0;
      rng = Rng.create w.seed;
      counters;
      out = [];
      seq = 0;
      gt_accesses = [];
      gt_executed = [];
      record_gt;
      hooks;
      preempt_prob;
    }
  in
  (* Allocate globals. *)
  List.iter
    (fun (g : global) ->
      let addr = Memory.alloc st.mem 1 in
      Hashtbl.replace st.globals g.gname addr;
      let v =
        match g.init with
        | Imm n -> VInt n
        | Str s -> VStr s
        | Null -> VNull
        | Reg _ -> invalid "global %s: register initialiser" g.gname
      in
      ignore (Memory.store st.mem addr v))
    program.globals;
  let steps = ref 0 in
  let finish outcome =
    {
      outcome;
      counters = st.counters;
      accesses = List.rev st.gt_accesses;
      executed = List.rev st.gt_executed;
      output = List.rev st.out;
      steps = !steps;
    }
  in
  let report_for t kind msg =
    let pc = match current_instr t with Some i -> i.iid | None -> 0 in
    Failure.{ kind; pc; tid = t.tid; stack = stack_trace t; message = msg }
  in
  (* A malformed main invocation (arity mismatch) is a failed run, not
     an interpreter exception. *)
  match spawn_thread st program.main w.args with
  | exception Crash (kind, msg) ->
    finish
      (Failed
         Failure.{ kind; pc = 0; tid = 0; stack = [ program.main ]; message = msg })
  | main_tid ->
  let current = ref main_tid in
  let rec loop () =
    if !steps >= max_steps then
      let t = Hashtbl.find st.threads !current in
      finish (Failed (report_for t Hang "step budget exhausted"))
    else
      let elig = eligible_tids st in
      match elig with
      | [||] ->
        if all_finished st then finish Success
        else
          (* Deadlock: report at a deterministic blocked thread. *)
          let blocked =
            Hashtbl.fold
              (fun _ t acc ->
                match (t.status, acc) with
                | (Blocked_lock _ | Blocked_join _), None -> Some t
                | _ -> acc)
              st.threads None
          in
          let t = Option.get blocked in
          finish (Failed (report_for t Deadlock "all threads blocked"))
      | _ ->
        let tid =
          match pick with
          | Some choose -> (
            (* Forced scheduling (record/replay): the recorded choice
               must still be eligible in the replay, which determinism
               guarantees. *)
            match choose ~eligible:(Array.to_list elig) with
            | Some t when Array.exists (Int.equal t) elig -> t
            | Some t ->
              invalid "forced schedule chose ineligible thread %d" t
            | None -> elig.(0))
          | None ->
          if not (Array.exists (Int.equal !current) elig) then begin
            st.counters.sched_switches <- st.counters.sched_switches + 1;
            elig.(Rng.int st.rng (Array.length elig))
          end
          else
            let t = Hashtbl.find st.threads !current in
            let p =
              match current_instr t with
              | Some i when is_yield i -> 0.9
              | Some i when interesting i -> st.preempt_prob
              | _ -> 0.02
            in
            let n = Array.length elig in
            if n > 1 && Rng.float st.rng < p then begin
              (* Index into [elig] minus the current thread, without
                 materialising the filtered list: same Rng draw (bound
                 [n - 1]), same element the [List.filter]+[List.nth]
                 version picked. *)
              let cur_at = ref 0 in
              Array.iteri (fun i x -> if x = !current then cur_at := i) elig;
              st.counters.sched_switches <- st.counters.sched_switches + 1;
              let j = Rng.int st.rng (n - 1) in
              elig.(if j >= !cur_at then j + 1 else j)
            end
            else !current
        in
        current := tid;
        st.hooks.sched ~choice:tid;
        let t = Hashtbl.find st.threads tid in
        (* Blocked instructions are retried once eligible again. *)
        (match t.status with
         | Blocked_lock _ | Blocked_join _ -> t.status <- Runnable
         | _ -> ());
        (match current_instr t with
         | None -> t.status <- Finished
         | Some i -> (
           incr steps;
           st.counters.instrs <- st.counters.instrs + 1;
           if st.record_gt then st.gt_executed <- (tid, i.iid) :: st.gt_executed;
           let fr = frame_of t in
           let ctx =
             {
               ctx_tid = tid;
               ctx_instr = i;
               read_reg = (fun r -> Hashtbl.find_opt fr.regs r);
               global_addr = (fun g -> Hashtbl.find_opt st.globals g);
             }
           in
           st.hooks.pre_instr ctx;
           st.hooks.step ~tid ~instr:i;
           try exec_instr st t i
           with Crash (kind, msg) ->
             raise
               (Crash_report
                  Failure.{
                    kind; pc = i.iid; tid; stack = stack_trace t; message = msg;
                  })));
        loop ()
  in
  try loop () with Crash_report r -> finish (Failed r)
