(* Systematic schedule exploration with iterative context bounding
   (in the spirit of CHESS, which the paper cites for Heisenbug
   reproduction [47]).

   Gist itself samples production schedules; this module instead
   *enumerates* schedules with at most [max_preemptions] preemptions at
   shared-memory/synchronisation points.  The test suite uses it to
   prove that each Bugbase race is reachable within a small preemption
   bound — a guarantee seed sampling cannot give — and, dually, that
   correctly synchronised code has no failing schedule within the
   bound. *)

open Ir.Types

(* One run under a forced schedule prefix; beyond the prefix the
   scheduler is non-preemptive (keep running the last thread while
   eligible, else the smallest eligible tid). *)
type probe = {
  p_result : Interp.result;
  p_choices : int array;                  (* tid chosen at every step *)
  p_expansions : (int * int list) list;   (* step, eligible alternatives *)
}

let run_prefix ?(max_steps = 50_000) program (w : Interp.workload)
    (prefix : int array) : probe =
  let choices = ref [] in
  let expansions = ref [] in
  let step_idx = ref (-1) in
  let last = ref (-1) in
  let interesting_step = ref false in
  let hooks = Interp.no_hooks () in
  hooks.pre_instr <-
    (fun ctx ->
      interesting_step :=
        (match ctx.ctx_instr.kind with
         | Load _ | Store _ | Load_global _ | Store_global _ | Lock _
         | Unlock _ | Free _ | Join _ | Spawn _ ->
           true
         | _ -> false));
  let pick ~eligible =
    incr step_idx;
    let k = !step_idx in
    let choice =
      if k < Array.length prefix then prefix.(k)
      else if List.mem !last eligible then !last
      else List.hd eligible
    in
    (* Record alternatives at steps past the prefix whose *previous*
       instruction was a shared access: the classic preemption points. *)
    if k >= Array.length prefix && !interesting_step then begin
      let alts = List.filter (fun t -> t <> choice) eligible in
      if alts <> [] then expansions := (k, alts) :: !expansions
    end;
    last := choice;
    choices := choice :: !choices;
    Some choice
  in
  let result = Interp.run ~hooks ~pick ~max_steps program w in
  {
    p_result = result;
    p_choices = Array.of_list (List.rev !choices);
    p_expansions = List.rev !expansions;
  }

type exploration = {
  schedules_run : int;
  truncated : bool; (* hit the schedule budget before exhausting the bound *)
  outcomes : (Failure.signature option * int) list; (* outcome -> #schedules *)
  witnesses : (Failure.signature * int array) list; (* first schedule per failure *)
}

let explore ?(max_preemptions = 2) ?(max_schedules = 4_000)
    ?(max_steps = 50_000) program (w : Interp.workload) : exploration =
  let outcomes : (Failure.signature option, int) Hashtbl.t = Hashtbl.create 8 in
  let witnesses : (Failure.signature, int array) Hashtbl.t = Hashtbl.create 8 in
  let runs = ref 0 in
  let truncated = ref false in
  (* DFS over (prefix, remaining preemption budget). *)
  let rec visit prefix budget =
    if !runs >= max_schedules then truncated := true
    else begin
      incr runs;
      let probe = run_prefix ~max_steps program w prefix in
      let key =
        match probe.p_result.outcome with
        | Interp.Success -> None
        | Interp.Failed rep ->
          let s = Failure.signature rep in
          if not (Hashtbl.mem witnesses s) then
            Hashtbl.replace witnesses s probe.p_choices;
          Some s
      in
      Hashtbl.replace outcomes key
        (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes key));
      if budget > 0 then
        List.iter
          (fun (step, alts) ->
            List.iter
              (fun alt ->
                if !runs < max_schedules then begin
                  let child = Array.make (step + 1) 0 in
                  Array.blit probe.p_choices 0 child 0 step;
                  child.(step) <- alt;
                  visit child (budget - 1)
                end)
              alts)
          probe.p_expansions
    end
  in
  visit [||] max_preemptions;
  {
    schedules_run = !runs;
    truncated = !truncated;
    outcomes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes [];
    witnesses = Hashtbl.fold (fun k v acc -> (k, v) :: acc) witnesses [];
  }

(* First schedule (within the bounds) whose failure satisfies [pred];
   DFS order makes the result deterministic. *)
let find ?(max_preemptions = 2) ?(max_schedules = 4_000) ?(max_steps = 50_000)
    ~pred program (w : Interp.workload) =
  let found = ref None in
  let runs = ref 0 in
  let rec visit prefix budget =
    if !found = None && !runs < max_schedules then begin
      incr runs;
      let probe = run_prefix ~max_steps program w prefix in
      (match probe.p_result.outcome with
       | Interp.Failed rep when pred rep -> found := Some (rep, probe.p_choices)
       | _ -> ());
      if !found = None && budget > 0 then
        List.iter
          (fun (step, alts) ->
            List.iter
              (fun alt ->
                if !found = None && !runs < max_schedules then begin
                  let child = Array.make (step + 1) 0 in
                  Array.blit probe.p_choices 0 child 0 step;
                  child.(step) <- alt;
                  visit child (budget - 1)
                end)
              alts)
          probe.p_expansions
    end
  in
  visit [||] max_preemptions;
  !found

(* Re-execute a witness schedule (e.g. from {!find}); by determinism it
   reproduces the same outcome. *)
let replay ?(max_steps = 50_000) program (w : Interp.workload)
    (schedule : int array) =
  (run_prefix ~max_steps program w schedule).p_result
