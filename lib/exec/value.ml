(* Runtime values.  Registers are thread-local (the paper's Gist does
   not watch stack variables, §6); only heap cells and globals live at
   watchable addresses. *)

type t =
  | VInt of int
  | VPtr of int          (* address of a heap/global cell *)
  | VStr of string
  | VTid of int          (* thread handle *)
  | VNull
  | VUnit

let truthy = function
  | VInt 0 | VNull -> false
  | VInt _ | VPtr _ | VStr _ | VTid _ | VUnit -> true

let pp ppf = function
  | VInt n -> Fmt.pf ppf "%d" n
  | VPtr a -> Fmt.pf ppf "ptr:%d" a
  | VStr s -> Fmt.pf ppf "%S" s
  | VTid t -> Fmt.pf ppf "tid:%d" t
  | VNull -> Fmt.pf ppf "null"
  | VUnit -> Fmt.pf ppf "()"

let to_string v = Fmt.str "%a" pp v

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VPtr x, VPtr y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VTid x, VTid y -> x = y
  | VNull, VNull | VUnit, VUnit -> true
  (* Null compares equal to the integer 0, as in C. *)
  | VNull, VInt 0 | VInt 0, VNull -> true
  | _ -> false
