(** The reference interpreter: the original nominal engine, executing
    [Ir.Types.program] directly (string-keyed register tables, label
    scans, string-matched builtins).

    [Interp.run] executes the lowered form; this module preserves the
    pre-lowering semantics verbatim so the differential test can prove
    the two engines bit-identical.  Same contract as {!Interp.run} in
    every parameter and every field of the result. *)

val run :
  ?hooks:Interp.hooks ->
  ?counters:Cost.t ->
  ?pick:(eligible:int list -> int option) ->
  ?max_steps:int ->
  ?record_gt:bool ->
  ?preempt_prob:float ->
  Ir.Types.program ->
  Interp.workload ->
  Interp.result
