(* The shared heap.  Freed blocks keep their identity so use-after-free
   and double-free are detected precisely (these are two of the failure
   classes in Table 1: pbzip2's segfault and Apache's double free). *)

type fail = Fail_segv | Fail_uaf | Fail_dfree

type block = { base : int; size : int; mutable freed : bool }

type t = {
  cells : (int, Value.t) Hashtbl.t;
  blocks : (int, block) Hashtbl.t;      (* base -> block *)
  cell_block : (int, int) Hashtbl.t;    (* cell addr -> base *)
  mutable next : int;
}

let create () =
  {
    cells = Hashtbl.create 256;
    blocks = Hashtbl.create 64;
    cell_block = Hashtbl.create 256;
    next = 16;
  }

let alloc t size =
  let size = max size 1 in
  let base = t.next in
  t.next <- t.next + size + 1 (* one-cell red zone between blocks *);
  Hashtbl.replace t.blocks base { base; size; freed = false };
  for k = 0 to size - 1 do
    Hashtbl.replace t.cells (base + k) (Value.VInt 0);
    Hashtbl.replace t.cell_block (base + k) base
  done;
  base

let block_of t addr =
  match Hashtbl.find_opt t.cell_block addr with
  | None -> None
  | Some base -> Hashtbl.find_opt t.blocks base

let check t addr =
  match block_of t addr with
  | None -> Error Fail_segv
  | Some b when b.freed -> Error Fail_uaf
  | Some _ -> Ok ()

let load t addr =
  match check t addr with
  | Error e -> Error e
  | Ok () -> Ok (Hashtbl.find t.cells addr)

let store t addr v =
  match check t addr with
  | Error e -> Error e
  | Ok () ->
    Hashtbl.replace t.cells addr v;
    Ok ()

let free t base =
  match Hashtbl.find_opt t.blocks base with
  | None -> Error Fail_segv
  | Some b when b.freed -> Error Fail_dfree
  | Some b ->
    b.freed <- true;
    Ok ()

(* Is [addr] a currently valid (allocated, unfreed) cell? *)
let valid t addr = match check t addr with Ok () -> true | Error _ -> false
