(** Event counters and the overhead cost model (Figs 11 and 13).

    The interpreter counts base work; tracing layers (Intel PT,
    watchpoints, record/replay, software tracing) count their own extra
    events, and overheads are reported as extra cycles over base
    cycles.  The constants are calibrated so the *shape* of the paper's
    §5.3 numbers holds on the Bugbase workloads (see EXPERIMENTS.md). *)

type t = {
  mutable instrs : int;          (** executed IR instructions (base work) *)
  mutable branches : int;
  mutable mem_accesses : int;    (** shared (heap/global) accesses *)
  mutable sched_switches : int;
  mutable pt_packets : int;
  mutable pt_bytes : int;        (** PT trace volume while enabled *)
  mutable pt_toggles : int;      (** PGE/PGD transitions *)
  mutable wp_traps : int;        (** watchpoint hits *)
  mutable wp_arms : int;         (** debug-register writes *)
  mutable rr_events : int;       (** record/replay nondeterministic events *)
  mutable sw_trace_events : int; (** software control-flow tracing events *)
}

val create : unit -> t

(** Cost constants, in abstract cycles. *)

val base_cycles_per_instr : float
val cycles_per_pt_byte : float
val cycles_per_pt_toggle : float
val cycles_per_wp_trap : float
val cycles_per_wp_arm : float
val cycles_per_rr_event : float
val cycles_per_sw_trace_event : float

(** Aggregate cycle counts for a run. *)

val base_cycles : t -> float
val pt_extra_cycles : t -> float
val wp_extra_cycles : t -> float
val rr_extra_cycles : t -> float
val sw_trace_extra_cycles : t -> float

(** [percent ~extra ~base] is [100 * extra / base] (0 when base is 0). *)
val percent : extra:float -> base:float -> float

(** Per-layer overhead percentages for one run;
    [gist_overhead_percent] is the PT + watchpoint total. *)

val gist_overhead_percent : t -> float
val pt_overhead_percent : t -> float
val wp_overhead_percent : t -> float
val rr_overhead_percent : t -> float
val sw_trace_overhead_percent : t -> float
