(** Deterministic splitmix64 generator: a whole run (scheduling
    included) is a pure function of (program, workload, seed), which
    the record/replay baseline and the determinism tests rely on. *)

type t

val create : int -> t
val next : t -> int64

(** Uniform int in [\[0, bound)]; 0 when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool
