(** A deterministic multithreaded interpreter for the IR.

    It plays the role of "production runs" in the paper: failures
    (including concurrency failures) manifest as a function of the
    scheduling seed and the workload, and tracing layers (Intel PT,
    watchpoints, record/replay) observe the execution through {!hooks}
    without perturbing it. *)

open Ir.Types

type rw = Read | Write

(** What an instrumentation hook may inspect at a pre-instruction
    program point — enough to arm a watchpoint on the address the
    upcoming access will touch. *)
type pre_ctx = {
  ctx_tid : int;
  ctx_instr : instr;
  read_reg : string -> Value.t option;
  global_addr : string -> int option;
}

(** Observation callbacks, all no-ops by default ({!no_hooks}).
    [pre_instr] fires before every instruction (including retries of
    blocked lock/join); [mem_access] on every shared load/store;
    [branch] on conditional branches with the taken direction; [ret]
    on returns with the caller resume point ([None] at thread exit);
    [step] once per executed instruction; [sched] with each scheduling
    choice. *)
type hooks = {
  mutable pre_instr : pre_ctx -> unit;
  mutable mem_access :
    tid:int -> instr:instr -> addr:int -> rw:rw -> value:Value.t -> unit;
  mutable branch : tid:int -> instr:instr -> taken:bool -> unit;
  mutable ret : tid:int -> instr:instr -> resume:iid option -> unit;
  mutable step : tid:int -> instr:instr -> unit;
  mutable sched : choice:int -> unit;
}

val no_hooks : unit -> hooks

(** A production workload: arguments bound to main's parameters and the
    scheduling seed. *)
type workload = { args : Value.t list; seed : int }

val workload : ?args:Value.t list -> int -> workload

(** A globally sequenced shared-memory access: the evaluation's ground
    truth (ideal sketches, record/replay); Gist itself only sees the
    subset captured by watchpoints. *)
type access = {
  a_seq : int;
  a_tid : int;
  a_iid : iid;
  a_addr : int;
  a_rw : rw;
  a_value : Value.t;
}

type outcome = Success | Failed of Failure.report

type result = {
  outcome : outcome;
  counters : Cost.t;
  accesses : access list;      (** ground truth; [] unless [record_gt] *)
  executed : (int * iid) list; (** ground truth; [] unless [record_gt] *)
  output : string list;        (** [print] builtin output, in order *)
  steps : int;
}

(** [run program workload] executes the program to completion or
    failure.

    - [hooks]: observation callbacks (default: none).
    - [counters]: the cost-counter record to update (default: fresh);
      pass a shared one so tracing layers and the run account into the
      same object.
    - [pick]: overrides the seeded scheduler (record/replay); called
      with the eligible thread ids, returning [None] falls back to the
      first eligible thread.
    - [max_steps]: hang-detector budget (default 400k).
    - [record_gt]: record the ground-truth access and execution logs.
    - [preempt_prob]: probability of a context switch at a
      shared-memory or synchronisation instruction (default 0.35);
      other instructions switch with probability 0.02. *)
val run :
  ?hooks:hooks ->
  ?counters:Cost.t ->
  ?pick:(eligible:int list -> int option) ->
  ?max_steps:int ->
  ?record_gt:bool ->
  ?preempt_prob:float ->
  program ->
  workload ->
  result
