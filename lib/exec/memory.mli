(** The shared heap.  Freed blocks keep their identity so use-after-free
    and double-free are detected precisely (two of Table 1's failure
    classes).  Blocks are separated by one-cell red zones, so walking
    off the end of a block is a segfault, not a silent overlap. *)

type fail = Fail_segv | Fail_uaf | Fail_dfree

type t

val create : unit -> t

(** [alloc t n] returns the base address of a fresh block of
    [max n 1] zero-initialised cells. *)
val alloc : t -> int -> int

(** Validity of a cell address (unmapped / freed / live). *)
val check : t -> int -> (unit, fail) result

val load : t -> int -> (Value.t, fail) result
val store : t -> int -> Value.t -> (unit, fail) result

(** [free t base] marks the block at [base] freed.
    [Error Fail_dfree] on a second free, [Error Fail_segv] when [base]
    is not a block base. *)
val free : t -> int -> (unit, fail) result

(** Is [addr] a currently valid (allocated, unfreed) cell? *)
val valid : t -> int -> bool
