(** Failure reports: what a production client ships to the Gist server
    ("a failure report (e.g., stack trace, the statement where the
    failure manifests itself)", paper Fig. 2).  Signatures identify
    "the same failure across multiple executions by matching the
    program counters and stack traces" (paper, footnote 1). *)

type kind =
  | Segfault
  | Use_after_free
  | Double_free
  | Assert_fail of string
  | Deadlock
  | Hang            (** step budget exhausted *)
  | Div_by_zero
  | Type_error of string

type report = {
  kind : kind;
  pc : Ir.Types.iid;   (** statement where the failure manifests *)
  tid : int;
  stack : string list; (** function names, innermost first *)
  message : string;
}

(** Coarse kind label ("segfault", "assert", ...), ignoring payloads. *)
val kind_tag : kind -> string

val kind_to_string : kind -> string

(** The failure identity used for matching across runs. *)
type signature = { s_kind : string; s_pc : Ir.Types.iid; s_stack : string list }

val signature : report -> signature
val same_failure : report -> report -> bool
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
