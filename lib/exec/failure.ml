(* Failure reports: what a production client ships to the Gist server
   (paper: "a failure report (e.g., stack trace, the statement where the
   failure manifests itself)").  Signatures identify "the same failure
   across multiple executions by matching the program counters and stack
   traces" (paper, footnote 1). *)

type kind =
  | Segfault
  | Use_after_free
  | Double_free
  | Assert_fail of string
  | Deadlock
  | Hang
  | Div_by_zero
  | Type_error of string

type report = {
  kind : kind;
  pc : Ir.Types.iid;      (* statement where the failure manifests *)
  tid : int;
  stack : string list;    (* function names, innermost first *)
  message : string;
}

let kind_tag = function
  | Segfault -> "segfault"
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Assert_fail _ -> "assert"
  | Deadlock -> "deadlock"
  | Hang -> "hang"
  | Div_by_zero -> "div-by-zero"
  | Type_error _ -> "type-error"

let kind_to_string = function
  | Assert_fail m -> "assertion failure: " ^ m
  | Type_error m -> "type error: " ^ m
  | k -> kind_tag k

type signature = { s_kind : string; s_pc : Ir.Types.iid; s_stack : string list }

let signature r = { s_kind = kind_tag r.kind; s_pc = r.pc; s_stack = r.stack }

let same_failure a b = signature a = signature b

let pp_report ppf r =
  Fmt.pf ppf "%s at pc %d (thread %d), stack: [%s]%s"
    (kind_to_string r.kind) r.pc r.tid
    (String.concat " <- " r.stack)
    (if r.message = "" then "" else ": " ^ r.message)

let report_to_string r = Fmt.str "%a" pp_report r
