(** Runtime values.  Registers are thread-local (Gist does not watch
    stack variables, paper §6); only heap cells and globals live at
    watchable addresses. *)

type t =
  | VInt of int
  | VPtr of int      (** address of a heap/global cell *)
  | VStr of string
  | VTid of int      (** thread handle *)
  | VNull
  | VUnit

(** C-style truthiness: [VInt 0] and [VNull] are false. *)
val truthy : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Structural equality, with [VNull = VInt 0] as in C. *)
val equal : t -> t -> bool
