(* A deterministic multithreaded interpreter for the IR.  It plays the
   role of "production runs" in the paper: failures (including
   concurrency failures) manifest as a function of the scheduling seed
   and the workload, and tracing layers (Intel PT, hardware
   watchpoints, record/replay) observe the execution through [hooks]
   without perturbing it.

   The engine executes the *lowered* form ([Ir.Lowered], memoised per
   program by [Analysis.Cache.lowered]): frames are [Value.t array]
   indexed by precompiled slots instead of string Hashtbls, jumps are
   block indices instead of label scans, callees/globals are resolved
   table indices, and builtins dispatch on an opcode variant instead of
   string comparison.  Observable behaviour — hook firings, RNG draws,
   scheduler choices, crash pcs/messages, counters — is bit-identical
   to the nominal reference engine ([Refinterp], kept for the
   differential test). *)

open Ir.Types
open Value
module L = Ir.Lowered

type rw = Read | Write

(* What an instrumentation hook may inspect at a pre-instruction
   program point (enough to arm a watchpoint on the address the
   upcoming access will touch). *)
type pre_ctx = {
  ctx_tid : int;
  ctx_instr : instr;
  read_reg : string -> Value.t option;
  global_addr : string -> int option;
}

type hooks = {
  mutable pre_instr : pre_ctx -> unit;
  mutable mem_access :
    tid:int -> instr:instr -> addr:int -> rw:rw -> value:Value.t -> unit;
  mutable branch : tid:int -> instr:instr -> taken:bool -> unit;
  mutable ret : tid:int -> instr:instr -> resume:iid option -> unit;
  mutable step : tid:int -> instr:instr -> unit;
  mutable sched : choice:int -> unit;
}

(* The default [pre_instr] is one shared physical closure so the hot
   loop can recognise it with [==] and skip building the [pre_ctx]
   record (and its [read_reg] closure) when nobody is listening. *)
let ignore_pre_instr : pre_ctx -> unit = fun _ -> ()

let no_hooks () =
  {
    pre_instr = ignore_pre_instr;
    mem_access = (fun ~tid:_ ~instr:_ ~addr:_ ~rw:_ ~value:_ -> ());
    branch = (fun ~tid:_ ~instr:_ ~taken:_ -> ());
    ret = (fun ~tid:_ ~instr:_ ~resume:_ -> ());
    step = (fun ~tid:_ ~instr:_ -> ());
    sched = (fun ~choice:_ -> ());
  }

type workload = { args : Value.t list; seed : int }

let workload ?(args = []) seed = { args; seed }

(* A globally sequenced shared-memory access: the evaluation's ground
   truth (used to compute ideal sketches and to feed the record/replay
   baseline); Gist itself only sees the subset captured by watchpoints. *)
type access = {
  a_seq : int;
  a_tid : int;
  a_iid : iid;
  a_addr : int;
  a_rw : rw;
  a_value : Value.t;
}

type outcome = Success | Failed of Failure.report

type result = {
  outcome : outcome;
  counters : Cost.t;
  accesses : access list;      (* ground truth; [] unless [record_gt] *)
  executed : (int * iid) list; (* ground truth; [] unless [record_gt] *)
  output : string list;
  steps : int;
}

(* ------------------------------------------------------------------ *)

(* An unbound register slot.  The sentinel is a single physical value
   only this module can install, so [==] distinguishes "never written"
   from every value a program can produce (including equal strings). *)
let unbound : Value.t = VStr "<unbound>"

type frame = {
  lf : L.lfunc;
  mutable blk : int;
  mutable idx : int;
  regs : Value.t array;  (* slot -> value; [unbound] when never set *)
  ret_dst : int option;  (* caller slot receiving the return value *)
}

type status =
  | Runnable
  | Blocked_lock of int
  | Blocked_join of int
  | Finished

type thread = {
  tid : int;
  mutable frames : frame list; (* innermost first *)
  mutable status : status;
}

exception Crash of Failure.kind * string
exception Crash_report of Failure.report

type state = {
  low : L.t;
  mem : Memory.t;
  gaddrs : int array;                  (* global index -> address *)
  locks : (int, int option) Hashtbl.t; (* lock addr -> holder tid *)
  threads : (int, thread) Hashtbl.t;   (* kept for the deadlock pick's
                                          fold order; hot-path lookups
                                          go through [thread_arr] *)
  mutable thread_arr : thread array;   (* tid -> thread (tids are dense) *)
  mutable elig_dirty : bool;           (* must rebuild [elig_cache]? *)
  mutable elig_cache : int array;
  mutable next_tid : int;
  rng : Rng.t;
  counters : Cost.t;
  mutable out : string list;
  mutable seq : int;
  mutable gt_accesses : access list;
  mutable gt_executed : (int * iid) list;
  record_gt : bool;
  hooks : hooks;
  preempt_prob : float;
}

let crash kind msg = raise (Crash (kind, msg))

let frame_of t =
  match t.frames with
  | f :: _ -> f
  | [] -> crash (Type_error "no frame") (Printf.sprintf "thread %d" t.tid)

let current_linstr t =
  match t.frames with
  | [] -> None
  | f :: _ -> Some f.lf.L.lf_blocks.(f.blk).(f.idx)

let stack_trace t = List.map (fun f -> f.lf.L.lf_name) t.frames

let eval_operand fr (op : L.lop) =
  match op with
  | LImm n -> VInt n
  | LStr s -> VStr s
  | LNull -> VNull
  | LReg s ->
    let v = Array.unsafe_get fr.regs s in
    if v == unbound then
      let r = fr.lf.L.lf_slot_names.(s) in
      crash (Type_error ("unbound register " ^ r)) r
    else v

let as_int = function
  | VInt n -> n
  | VNull -> 0
  | v -> crash (Type_error "expected int") (Value.to_string v)

let eval_binop op a b =
  let bool_v c = VInt (if c then 1 else 0) in
  match (op, a, b) with
  | Eq, _, _ -> bool_v (Value.equal a b)
  | Ne, _, _ -> bool_v (not (Value.equal a b))
  | And, _, _ -> bool_v (truthy a && truthy b)
  | Or, _, _ -> bool_v (truthy a || truthy b)
  | Add, VPtr p, VInt n | Add, VInt n, VPtr p -> VPtr (p + n)
  | Sub, VPtr p, VInt n -> VPtr (p - n)
  | Sub, VPtr p, VPtr q -> VInt (p - q)
  | Add, VStr s, VStr u -> VStr (s ^ u)
  | (Lt | Le | Gt | Ge), VPtr p, VPtr q ->
    let c = compare p q in
    bool_v
      (match op with
       | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
       | _ -> assert false)
  | _ ->
    let x = as_int a and y = as_int b in
    (match op with
     | Add -> VInt (x + y)
     | Sub -> VInt (x - y)
     | Mul -> VInt (x * y)
     | Div -> if y = 0 then crash Div_by_zero "" else VInt (x / y)
     | Mod -> if y = 0 then crash Div_by_zero "" else VInt (x mod y)
     | Lt -> bool_v (x < y)
     | Le -> bool_v (x <= y)
     | Gt -> bool_v (x > y)
     | Ge -> bool_v (x >= y)
     | Eq | Ne | And | Or -> assert false)

let eval_expr fr (e : L.lexpr) =
  match e with
  | LBin (op, a, b) -> eval_binop op (eval_operand fr a) (eval_operand fr b)
  | LMov a -> eval_operand fr a
  | LNot a -> VInt (if truthy (eval_operand fr a) then 0 else 1)

(* Evaluate an argument vector left to right (the order the nominal
   engine's [List.map] used, which fixes *which* crash fires first). *)
let eval_args fr (ops : L.lop array) =
  let n = Array.length ops in
  if n = 0 then [||]
  else begin
    let vs = Array.make n VUnit in
    for k = 0 to n - 1 do
      vs.(k) <- eval_operand fr ops.(k)
    done;
    vs
  end

(* Address of a memory operand, raising the right failure kind. *)
let resolve_addr base_v offset =
  match base_v with
  | VPtr a -> a + offset
  | VNull -> crash Segfault "null dereference"
  | v -> crash (Type_error "dereference of non-pointer") (Value.to_string v)

let mem_fail_to_crash op = function
  | Memory.Fail_segv -> crash Segfault op
  | Memory.Fail_uaf -> crash Use_after_free op
  | Memory.Fail_dfree -> crash Double_free op

let record_access st t (li : L.linstr) addr rw value =
  st.seq <- st.seq + 1;
  st.counters.mem_accesses <- st.counters.mem_accesses + 1;
  if st.record_gt then
    st.gt_accesses <-
      { a_seq = st.seq; a_tid = t.tid; a_iid = li.L.li_iid; a_addr = addr;
        a_rw = rw; a_value = value }
      :: st.gt_accesses;
  st.hooks.mem_access ~tid:t.tid ~instr:li.L.li_instr ~addr ~rw ~value

let do_load st t li addr =
  match Memory.load st.mem addr with
  | Error e -> mem_fail_to_crash "load" e
  | Ok v ->
    record_access st t li addr Read v;
    v

let do_store st t li addr v =
  match Memory.store st.mem addr v with
  | Error e -> mem_fail_to_crash "store" e
  | Ok () -> record_access st t li addr Write v

(* Fresh callee frame with [values] bound to the parameter slots.
   Duplicate parameter names share a slot, so the last binding wins —
   as the nominal engine's repeated [Hashtbl.replace] did. *)
let bind_frame ~what (lf : L.lfunc) values ret_dst =
  if Array.length values <> Array.length lf.L.lf_params then
    crash (Type_error ("arity mismatch " ^ what ^ " " ^ lf.L.lf_name)) "";
  let regs = Array.make lf.L.lf_nslots unbound in
  Array.iteri (fun k v -> regs.(lf.L.lf_params.(k)) <- v) values;
  { lf; blk = 0; idx = 0; regs; ret_dst }

let spawn_thread st fidx values =
  let lf = st.low.L.l_funcs.(fidx) in
  let fr = bind_frame ~what:"spawning" lf values None in
  let tid = st.next_tid in
  st.next_tid <- st.next_tid + 1;
  let t = { tid; frames = [ fr ]; status = Runnable } in
  Hashtbl.replace st.threads tid t;
  let cap = Array.length st.thread_arr in
  if tid >= cap then begin
    let bigger = Array.make (max 8 (2 * (tid + 1))) t in
    Array.blit st.thread_arr 0 bigger 0 cap;
    st.thread_arr <- bigger
  end;
  st.thread_arr.(tid) <- t;
  st.elig_dirty <- true;
  tid

let do_builtin st fr dst (op : L.builtin_op) name (args : Value.t array) =
  let v : Value.t =
    match (op, args) with
    | L.B_print, [| v |] ->
      st.out <- Value.to_string v :: st.out;
      VUnit
    | L.B_print_int, [| v |] ->
      st.out <- string_of_int (as_int v) :: st.out;
      VUnit
    | (L.B_strlen | L.B_input_len), [| VStr s |] -> VInt (String.length s)
    | (L.B_strlen | L.B_input_len), [| VNull |] -> crash Segfault "strlen(NULL)"
    | (L.B_strlen | L.B_input_len), [| v |] ->
      crash (Type_error "strlen of non-string") (Value.to_string v)
    | L.B_str_char, [| VStr s; i |] ->
      let k = as_int i in
      if k >= 0 && k < String.length s then VInt (Char.code s.[k])
      else VInt (-1)
    | L.B_str_char, [| VNull; _ |] -> crash Segfault "str_char(NULL)"
    | L.B_str_concat, [| VStr a; VStr b |] -> VStr (a ^ b)
    | L.B_atoi, [| VStr s |] ->
      VInt (match int_of_string_opt (String.trim s) with Some n -> n | None -> 0)
    | L.B_abs, [| v |] -> VInt (abs (as_int v))
    | L.B_min, [| a; b |] -> VInt (min (as_int a) (as_int b))
    | L.B_max, [| a; b |] -> VInt (max (as_int a) (as_int b))
    | (L.B_yield | L.B_sleep), _ -> VUnit
    | _ -> crash (Type_error ("bad builtin call " ^ name)) ""
  in
  match dst with Some s -> fr.regs.(s) <- v | None -> ()

(* Execute one instruction of thread [t].  Blocking instructions leave
   the position unchanged and flip the thread status; the scheduler
   retries them when they become eligible again. *)
let exec_instr st t (li : L.linstr) =
  let fr = frame_of t in
  let advance () = fr.idx <- fr.idx + 1 in
  match li.L.li_kind with
  | LAssign (s, e) ->
    fr.regs.(s) <- eval_expr fr e;
    advance ()
  | LLoad (s, base, off) ->
    let addr = resolve_addr (eval_operand fr base) off in
    fr.regs.(s) <- do_load st t li addr;
    advance ()
  | LStore (base, off, v) ->
    let addr = resolve_addr (eval_operand fr base) off in
    do_store st t li addr (eval_operand fr v);
    advance ()
  | LLoad_global (s, gi) ->
    let addr = st.gaddrs.(gi) in
    fr.regs.(s) <- do_load st t li addr;
    advance ()
  | LStore_global (gi, v) ->
    let addr = st.gaddrs.(gi) in
    do_store st t li addr (eval_operand fr v);
    advance ()
  | LMalloc (s, n) ->
    fr.regs.(s) <- VPtr (Memory.alloc st.mem n);
    advance ()
  | LFree p -> (
    match eval_operand fr p with
    | VPtr base -> (
      match Memory.free st.mem base with
      | Error e -> mem_fail_to_crash "free" e
      | Ok () -> advance ())
    | VNull -> advance () (* free(NULL) is a no-op, as in C *)
    | v -> crash (Type_error "free of non-pointer") (Value.to_string v))
  | LCall (dst, fidx, args) ->
    let values = eval_args fr args in
    advance ();
    t.frames <-
      bind_frame ~what:"calling" st.low.L.l_funcs.(fidx) values dst
      :: t.frames
  | LBuiltin (dst, op, name, args) ->
    do_builtin st fr dst op name (eval_args fr args);
    advance ()
  | LJmp b ->
    fr.blk <- b;
    fr.idx <- 0
  | LBranch (c, bt, be) ->
    let taken = truthy (eval_operand fr c) in
    st.counters.branches <- st.counters.branches + 1;
    st.hooks.branch ~tid:t.tid ~instr:li.L.li_instr ~taken;
    fr.blk <- (if taken then bt else be);
    fr.idx <- 0
  | LRet v -> (
    let value = match v with Some op -> eval_operand fr op | None -> VUnit in
    let popped = fr in
    t.frames <- List.tl t.frames;
    match t.frames with
    | [] ->
      st.hooks.ret ~tid:t.tid ~instr:li.L.li_instr ~resume:None;
      t.status <- Finished;
      st.elig_dirty <- true
    | caller :: _ ->
      let resume = caller.lf.L.lf_blocks.(caller.blk).(caller.idx).L.li_iid in
      st.hooks.ret ~tid:t.tid ~instr:li.L.li_instr ~resume:(Some resume);
      (match popped.ret_dst with
       | Some s -> caller.regs.(s) <- value
       | None -> ()))
  | LSpawn (s, fidx, args) ->
    let values = eval_args fr args in
    let tid = spawn_thread st fidx values in
    fr.regs.(s) <- VTid tid;
    advance ()
  | LJoin target -> (
    match eval_operand fr target with
    | VTid tid -> (
      match Hashtbl.find_opt st.threads tid with
      | Some th when th.status <> Finished ->
        t.status <- Blocked_join tid;
        st.elig_dirty <- true
      | _ -> advance ())
    | v -> crash (Type_error "join of non-thread") (Value.to_string v))
  | LLock m -> (
    let addr =
      match eval_operand fr m with
      | VPtr a -> a
      | VNull -> crash Segfault "lock(NULL)"
      | v -> crash (Type_error "lock of non-pointer") (Value.to_string v)
    in
    (match Memory.check st.mem addr with
     | Error e -> mem_fail_to_crash "lock" e
     | Ok () -> ());
    match Hashtbl.find_opt st.locks addr with
    | Some (Some holder) when holder <> t.tid ->
      t.status <- Blocked_lock addr;
      st.elig_dirty <- true
    | _ ->
      Hashtbl.replace st.locks addr (Some t.tid);
      st.elig_dirty <- true;
      advance ())
  | LUnlock m ->
    let addr =
      match eval_operand fr m with
      | VPtr a -> a
      | VNull -> crash Segfault "unlock(NULL)"
      | v -> crash (Type_error "unlock of non-pointer") (Value.to_string v)
    in
    (match Memory.check st.mem addr with
     | Error e -> mem_fail_to_crash "unlock" e
     | Ok () -> ());
    Hashtbl.replace st.locks addr None;
    st.elig_dirty <- true;
    advance ()
  | LAssert (c, msg) ->
    if truthy (eval_operand fr c) then advance ()
    else crash (Assert_fail msg) msg

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let eligible st t =
  match t.status with
  | Runnable -> true
  | Finished -> false
  | Blocked_lock addr -> (
    match Hashtbl.find_opt st.locks addr with
    | Some (Some _) -> false
    | _ -> true)
  | Blocked_join tid -> st.thread_arr.(tid).status = Finished

(* Sorted array of runnable thread ids.  The scheduler indexes into it
   directly (this is the interpreter's innermost loop), so the array is
   cached and only rebuilt after an event that can change eligibility:
   a spawn, a status change, or a lock transfer ([elig_dirty]).  Tids
   are dense and scanned in order, so the result needs no sort. *)
let eligible_tids st =
  if st.elig_dirty then begin
    let n = st.next_tid in
    let buf = Array.make (max n 1) 0 in
    let k = ref 0 in
    for tid = 0 to n - 1 do
      if eligible st st.thread_arr.(tid) then begin
        buf.(!k) <- tid;
        incr k
      end
    done;
    st.elig_cache <- Array.sub buf 0 !k;
    st.elig_dirty <- false
  end;
  st.elig_cache

let all_finished st =
  let rec go i =
    i >= st.next_tid || (st.thread_arr.(i).status = Finished && go (i + 1))
  in
  go 0

let rec array_mem x (a : int array) i =
  i < Array.length a && (Array.unsafe_get a i = x || array_mem x a (i + 1))

let run ?hooks ?counters ?pick ?(max_steps = 400_000) ?(record_gt = false)
    ?(preempt_prob = 0.35) program (w : workload) : result =
  let hooks = match hooks with Some h -> h | None -> no_hooks () in
  let counters = match counters with Some c -> c | None -> Cost.create () in
  let low = Analysis.Cache.lowered program in
  let st =
    {
      low;
      mem = Memory.create ();
      gaddrs = Array.make (Array.length low.L.l_globals) 0;
      locks = Hashtbl.create 16;
      threads = Hashtbl.create 8;
      thread_arr = [||];
      elig_dirty = true;
      elig_cache = [||];
      next_tid = 0;
      rng = Rng.create w.seed;
      counters;
      out = [];
      seq = 0;
      gt_accesses = [];
      gt_executed = [];
      record_gt;
      hooks;
      preempt_prob;
    }
  in
  (* Allocate globals, in declaration order (addresses must match the
     nominal engine's allocation sequence). *)
  Array.iteri
    (fun gi (g : global) ->
      let addr = Memory.alloc st.mem 1 in
      st.gaddrs.(gi) <- addr;
      let v =
        match g.init with
        | Imm n -> VInt n
        | Str s -> VStr s
        | Null -> VNull
        | Reg _ -> invalid "global %s: register initialiser" g.gname
      in
      ignore (Memory.store st.mem addr v))
    low.L.l_globals;
  (* [pre_ctx] name lookups resolve through the lowering tables; the
     observable answers are those of the nominal engine. *)
  let global_addr g =
    match Hashtbl.find_opt low.L.l_global_index g with
    | Some gi -> Some st.gaddrs.(gi)
    | None -> None
  in
  let steps = ref 0 in
  let finish outcome =
    {
      outcome;
      counters = st.counters;
      accesses = List.rev st.gt_accesses;
      executed = List.rev st.gt_executed;
      output = List.rev st.out;
      steps = !steps;
    }
  in
  let report_for t kind msg =
    let pc = match current_linstr t with Some li -> li.L.li_iid | None -> 0 in
    Failure.{ kind; pc; tid = t.tid; stack = stack_trace t; message = msg }
  in
  (* A malformed main invocation (arity mismatch) is a failed run, not
     an interpreter exception. *)
  let main_args = Array.of_list w.args in
  match spawn_thread st low.L.l_main main_args with
  | exception Crash (kind, msg) ->
    finish
      (Failed
         Failure.{
           kind; pc = 0; tid = 0; stack = [ low.L.l_program.main ];
           message = msg;
         })
  | main_tid ->
  let current = ref main_tid in
  let rec loop () =
    if !steps >= max_steps then
      let t = st.thread_arr.(!current) in
      finish (Failed (report_for t Hang "step budget exhausted"))
    else
      let elig = eligible_tids st in
      match elig with
      | [||] ->
        if all_finished st then finish Success
        else
          (* Deadlock: report at a deterministic blocked thread. *)
          let blocked =
            Hashtbl.fold
              (fun _ t acc ->
                match (t.status, acc) with
                | (Blocked_lock _ | Blocked_join _), None -> Some t
                | _ -> acc)
              st.threads None
          in
          let t = Option.get blocked in
          finish (Failed (report_for t Deadlock "all threads blocked"))
      | _ ->
        let tid =
          match pick with
          | Some choose -> (
            (* Forced scheduling (record/replay): the recorded choice
               must still be eligible in the replay, which determinism
               guarantees. *)
            match choose ~eligible:(Array.to_list elig) with
            | Some t when array_mem t elig 0 -> t
            | Some t ->
              invalid "forced schedule chose ineligible thread %d" t
            | None -> elig.(0))
          | None ->
          if not (array_mem !current elig 0) then begin
            st.counters.sched_switches <- st.counters.sched_switches + 1;
            elig.(Rng.int st.rng (Array.length elig))
          end
          else
            let t = st.thread_arr.(!current) in
            let p =
              match current_linstr t with
              | Some li when li.L.li_yield -> 0.9
              | Some li when li.L.li_interesting -> st.preempt_prob
              | _ -> 0.02
            in
            let n = Array.length elig in
            if n > 1 && Rng.float st.rng < p then begin
              (* Index into [elig] minus the current thread, without
                 materialising the filtered list: same Rng draw (bound
                 [n - 1]), same element the [List.filter]+[List.nth]
                 version picked. *)
              let cur_at = ref 0 in
              Array.iteri (fun i x -> if x = !current then cur_at := i) elig;
              st.counters.sched_switches <- st.counters.sched_switches + 1;
              let j = Rng.int st.rng (n - 1) in
              elig.(if j >= !cur_at then j + 1 else j)
            end
            else !current
        in
        current := tid;
        st.hooks.sched ~choice:tid;
        let t = st.thread_arr.(tid) in
        (* Blocked instructions are retried once eligible again.  The
           flip does not change the eligible set (the thread was just
           chosen from it), so the cache stays valid. *)
        (match t.status with
         | Blocked_lock _ | Blocked_join _ -> t.status <- Runnable
         | _ -> ());
        (match current_linstr t with
         | None ->
           t.status <- Finished;
           st.elig_dirty <- true
         | Some li -> (
           incr steps;
           st.counters.instrs <- st.counters.instrs + 1;
           if st.record_gt then
             st.gt_executed <- (tid, li.L.li_iid) :: st.gt_executed;
           if st.hooks.pre_instr != ignore_pre_instr then begin
             let fr = frame_of t in
             let ctx =
               {
                 ctx_tid = tid;
                 ctx_instr = li.L.li_instr;
                 read_reg =
                   (fun r ->
                     match Hashtbl.find_opt fr.lf.L.lf_slots r with
                     | Some s ->
                       let v = fr.regs.(s) in
                       if v == unbound then None else Some v
                     | None -> None);
                 global_addr;
               }
             in
             st.hooks.pre_instr ctx
           end;
           st.hooks.step ~tid ~instr:li.L.li_instr;
           try exec_instr st t li
           with Crash (kind, msg) ->
             raise
               (Crash_report
                  Failure.{
                    kind; pc = li.L.li_iid; tid; stack = stack_trace t;
                    message = msg;
                  })));
        loop ()
  in
  try loop () with Crash_report r -> finish (Failed r)
