(* Event counters feeding the overhead cost model (Figs 11 and 13).
   The interpreter counts base work; tracing layers (PT, watchpoints,
   record/replay, software tracing) count their own extra events here. *)

type t = {
  mutable instrs : int;          (* base work: executed IR instructions *)
  mutable branches : int;        (* conditional branches executed *)
  mutable mem_accesses : int;    (* shared (heap/global) accesses *)
  mutable sched_switches : int;
  mutable pt_packets : int;
  mutable pt_bytes : int;        (* PT trace volume while enabled *)
  mutable pt_toggles : int;      (* PGE/PGD transitions (ioctl cost) *)
  mutable wp_traps : int;        (* hardware watchpoint hits *)
  mutable wp_arms : int;         (* debug-register writes (ptrace cost) *)
  mutable rr_events : int;       (* record/replay nondeterministic events *)
  mutable sw_trace_events : int; (* software control-flow tracing events *)
}

let create () =
  {
    instrs = 0;
    branches = 0;
    mem_accesses = 0;
    sched_switches = 0;
    pt_packets = 0;
    pt_bytes = 0;
    pt_toggles = 0;
    wp_traps = 0;
    wp_arms = 0;
    rr_events = 0;
    sw_trace_events = 0;
  }

(* Cost constants, in abstract cycles.  Calibrated so that the *shape*
   of the paper's §5.3 numbers holds on the bugbase workloads:
   full-PT tracing lands near ~10% overhead on branchy programs,
   Gist's adaptive tracking in the low single digits, watchpoint
   arming/traps sub-1%, software tracing 3x-5000x, and rr record/replay
   orders of magnitude above PT. *)
let base_cycles_per_instr = 10.0
let cycles_per_pt_byte = 10.0
let cycles_per_pt_toggle = 120.0
let cycles_per_wp_trap = 120.0
let cycles_per_wp_arm = 250.0
let cycles_per_rr_event = 110.0
let cycles_per_sw_trace_event = 60.0

let base_cycles c = base_cycles_per_instr *. float_of_int c.instrs

let pt_extra_cycles c =
  (cycles_per_pt_byte *. float_of_int c.pt_bytes)
  +. (cycles_per_pt_toggle *. float_of_int c.pt_toggles)

let wp_extra_cycles c =
  (cycles_per_wp_trap *. float_of_int c.wp_traps)
  +. (cycles_per_wp_arm *. float_of_int c.wp_arms)

let rr_extra_cycles c = cycles_per_rr_event *. float_of_int c.rr_events

let sw_trace_extra_cycles c =
  cycles_per_sw_trace_event *. float_of_int c.sw_trace_events

(* Overhead of a tracing layer as a percentage of base work. *)
let percent ~extra ~base = if base <= 0.0 then 0.0 else 100.0 *. extra /. base

let gist_overhead_percent c =
  percent ~extra:(pt_extra_cycles c +. wp_extra_cycles c) ~base:(base_cycles c)

let pt_overhead_percent c =
  percent ~extra:(pt_extra_cycles c) ~base:(base_cycles c)

let wp_overhead_percent c =
  percent ~extra:(wp_extra_cycles c) ~base:(base_cycles c)

let rr_overhead_percent c =
  percent ~extra:(rr_extra_cycles c) ~base:(base_cycles c)

let sw_trace_overhead_percent c =
  percent ~extra:(sw_trace_extra_cycles c) ~base:(base_cycles c)
