(** An Intel Processor Trace simulator.

    Like the real feature (paper §3.2.2, §6), it records only control
    flow — conditional-branch outcomes as TNT bits and return targets
    as TIP packets, delimited by PGE/PGD when tracing is toggled — in
    per-thread streams with {e no order across threads} (the per-core
    partial-order limitation Gist compensates with watchpoints), with
    no data values, and with byte-accounted trace volume feeding the
    cost model.

    Per-thread streams are packed: packets append into a growable
    array (real PT writes into a ring of physical pages) and pending
    TNT bits fill a fixed 8-slot buffer, so recording does no list
    consing; {!packets_of} still returns the oldest-first packet list.

    The decoder reconstructs the executed instruction sequence between
    each PGE/PGD pair by re-walking the program, consuming one TNT bit
    per conditional branch and one TIP per return.  The walk runs on
    the lowered successor table ([Ir.Lowered.l_dsteps], memoised via
    [Analysis.Cache.lowered]) — one array load per reconstructed
    instruction. *)

open Ir.Types

(** A PTWRITE-style data packet: the hardware extension the paper's §6
    proposes to eliminate watchpoints.  The TSC payload gives data
    packets a global order across per-thread streams. *)
type ptw = {
  p_tsc : int;
  p_iid : iid;
  p_addr : int;
  p_write : bool;
  p_value : Exec.Value.t;
}

type packet =
  | PGE of iid  (** trace enabled; payload: the first traced pc *)
  | PGD of iid
      (** trace disabled; payload: the disable pc.  [-1] marks a
          crash-truncated stream (carries the FUP-style last pc noted
          via {!note_pc}), [-2] a clean thread exit. *)
  | TNT of bool list  (** up to 8 branch outcomes, oldest first *)
  | TIP of iid        (** return target; 0 = thread exit *)
  | PTW of ptw        (** extension: a data packet (address + value + TSC) *)

val packet_bytes : packet -> int

type recorder

(** [create counters] — trace volume and toggles account into
    [counters]. *)
val create : Exec.Cost.t -> recorder

val enabled : recorder -> int -> bool

(** [enable r ~tid ~pc] starts tracing thread [tid]; idempotent. *)
val enable : recorder -> tid:int -> pc:iid -> unit

(** [disable r ~tid ~pc] stops tracing; idempotent. *)
val disable : recorder -> tid:int -> pc:iid -> unit

(** Track the current pc of an enabled stream so a crash-time flush
    emits it (like the FUP accompanying a real PGD). *)
val note_pc : recorder -> tid:int -> pc:iid -> unit

val on_branch : recorder -> tid:int -> taken:bool -> unit

(** Extension: emit a PTWRITE data packet for an instrumented access
    (only while the stream is tracing). *)
val on_data :
  recorder -> tid:int -> iid:iid -> addr:int -> rw:Exec.Interp.rw ->
  value:Exec.Value.t -> unit

(** [on_ret r ~tid ~resume]: [resume = None] is a thread exit and
    closes the stream. *)
val on_ret : recorder -> tid:int -> resume:iid option -> unit

(** Close any stream still tracing (e.g. the run crashed). *)
val finish : recorder -> unit

val packets_of : recorder -> int -> packet list
val all_tids : recorder -> int list

(** Typed decode faults for damaged streams, shared by the byte-level
    ring codec ({!Wire}) and the control-flow walk.  Crash truncation
    is not an error ({!finish} PGD-terminates a crashed stream); a
    missing terminator can only mean the ring itself lost its tail. *)
type error =
  | Empty_stream
      (** the ring arrived with no bytes / no packets at all — a
          {e dropped} ring (or a thread that never enabled tracing),
          distinct from a damaged one so fleet-health counters don't
          book drops as corruption *)
  | Truncated                   (** stream does not end with a PGD *)
  | Bad_target of int           (** transfer target outside the program *)
  | Malformed_packet of string

val error_to_string : error -> string

(** The binary ring representation: what real PT writes into its ring
    of physical pages, and the layer the fleet's tamper models damage.
    Packets are varint-packed and iid-delta-encoded.

    Layout: one magic byte, a varint packet count, then packets.  Tag
    bytes: [0x01] PGE, [0x02] PGD, [0x04] TIP, [0x05] PTW, [0x10|n] an
    n-bit TNT ([n] in 1..8) followed by one outcome-mask byte.  All
    iid payloads share one zigzag delta chain; PTW timestamps
    delta-encode against the previous PTW in the stream. *)
module Wire : sig
  val magic : int

  (** [encode_into b ~count packet_at] appends the ring encoding of
      packets [packet_at 0 .. packet_at (count-1)] to [b]. *)
  val encode_into : Buffer.t -> count:int -> (int -> packet) -> unit

  val encode : packet list -> string

  (** [decode bytes] never raises: a damaged ring yields the clean
      packet prefix plus a typed error.  [""] is [Empty_stream]; a
      ring cut mid-packet or ending short of the promised count is
      [Truncated]; an unknown tag or trailing bytes are
      [Malformed_packet]. *)
  val decode : string -> packet list * error option
end

(** One thread's ring as bytes, encoded straight from the packed
    packet array (no intermediate packet list). *)
val wire_of : recorder -> int -> string

type decoded = {
  d_iids : iid list;              (** executed instructions, in order *)
  d_branches : (iid * bool) list; (** branch outcomes, in order *)
  d_data : ptw list;              (** PTWRITE data packets, in TSC order *)
}

exception Malformed of string

(** [decode_checked program packets] decodes as much of the stream as
    is structurally sound: a damaged stream yields the clean decoded
    prefix plus a typed error — never an out-of-bounds access, never
    an exception.  [[]] decodes to the empty trace with
    [Some Empty_stream]: the decoder cannot tell a never-enabled
    stream from a dropped ring, so it reports the fact and lets the
    caller classify it. *)
val decode_checked : program -> packet list -> decoded * error option

(** Decode one thread's packet stream against the program.
    [Empty_stream] is benign here (an empty trace, not a fault).
    @raise Malformed on a damaged stream. *)
val decode : program -> packet list -> decoded

(** Decode every stream of a recorder, by thread id. *)
val decode_all : recorder -> program -> (int * decoded) list
