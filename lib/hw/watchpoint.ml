(* Hardware watchpoints: x86 exposes four debug registers (DR0-DR3,
   paper §3.2.3).  A trap records the globally sequenced access --
   watchpoints are the only source of *total* cross-thread order and of
   data values in Gist (Intel PT provides neither). *)

open Ir.Types

type trap = {
  w_seq : int;
  w_tid : int;
  w_iid : iid;
  w_addr : int;
  w_rw : Exec.Interp.rw;
  w_value : Exec.Value.t;
}

type t = {
  capacity : int;
  mutable slots : int list; (* watched addresses, |slots| <= capacity *)
  mutable traps : trap list; (* newest first *)
  mutable seq : int;
  counters : Exec.Cost.t;
}

let create ?(capacity = 4) counters = { capacity; slots = []; traps = []; seq = 0; counters }

let watched t addr = List.mem addr t.slots

let free_slots t = t.capacity - List.length t.slots

(* Arm a watchpoint; returns false when out of debug registers or the
   address is already watched (Gist keeps a set of active watchpoints
   to avoid double-arming, §3.2.3). *)
let arm t addr =
  if watched t addr then false
  else if free_slots t <= 0 then false
  else begin
    t.slots <- addr :: t.slots;
    t.counters.wp_arms <- t.counters.wp_arms + 1;
    true
  end

let disarm t addr = t.slots <- List.filter (fun a -> a <> addr) t.slots

(* The interpreter's mem_access hook. *)
let on_access t ~tid ~iid ~addr ~rw ~value =
  if watched t addr then begin
    t.seq <- t.seq + 1;
    t.counters.wp_traps <- t.counters.wp_traps + 1;
    t.traps <-
      { w_seq = t.seq; w_tid = tid; w_iid = iid; w_addr = addr; w_rw = rw;
        w_value = value }
      :: t.traps
  end

let traps t = List.rev t.traps
