(* Varint wire primitives shared by the binary encodings (the PT ring
   bytes of [Pt.Wire] and the report envelope of [Gist.Protocol.Encode]).

   Writers append to a [Buffer.t]; readers walk a string with a mutable
   cursor and allocate nothing per scalar read (the only allocations a
   reader performs are the decoded payloads themselves: strings and
   boxed floats).  A read that would run past the end raises {!Short} --
   the caller maps it to its own typed truncation error; no primitive
   ever reads out of bounds. *)

exception Short

(* --- writers --- *)

(* LEB128: 7 bits per byte, low bits first, high bit = continuation.
   The OCaml int is 63-bit; negative inputs are a programming error
   (use [put_int]). *)
let put_uint b n =
  if n < 0 then invalid_arg "Wirebuf.put_uint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

(* Zigzag: small magnitudes of either sign stay one byte. *)
let put_int b n = put_uint b ((n lsl 1) lxor (n asr 62))

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

(* Fixed 8 bytes, little-endian IEEE bits: floats must round-trip
   exactly (report checksums and diagnosis output depend on it). *)
let put_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let put_string b s =
  put_uint b (String.length s);
  Buffer.add_string b s

let put_value b (v : Exec.Value.t) =
  match v with
  | Exec.Value.VInt i ->
    Buffer.add_char b '\001';
    put_int b i
  | Exec.Value.VPtr a ->
    Buffer.add_char b '\002';
    put_int b a
  | Exec.Value.VStr s ->
    Buffer.add_char b '\003';
    put_string b s
  | Exec.Value.VTid t ->
    Buffer.add_char b '\004';
    put_int b t
  | Exec.Value.VNull -> Buffer.add_char b '\005'
  | Exec.Value.VUnit -> Buffer.add_char b '\006'

(* --- readers --- *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit src =
  let limit = Option.value ~default:(String.length src) limit in
  { src; pos; limit }

let eof r = r.pos >= r.limit

let byte r =
  if r.pos >= r.limit then raise Short;
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let get_uint r =
  let rec go shift acc =
    let c = byte r in
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int r =
  let z = get_uint r in
  (z lsr 1) lxor (-(z land 1))

let get_bool r = byte r <> 0

let get_float r =
  if r.pos + 8 > r.limit then raise Short;
  let bits = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits bits

let get_string r =
  let n = get_uint r in
  if n < 0 || r.pos + n > r.limit then raise Short;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_value r : Exec.Value.t =
  match byte r with
  | 1 -> Exec.Value.VInt (get_int r)
  | 2 -> Exec.Value.VPtr (get_int r)
  | 3 -> Exec.Value.VStr (get_string r)
  | 4 -> Exec.Value.VTid (get_int r)
  | 5 -> Exec.Value.VNull
  | 6 -> Exec.Value.VUnit
  | _ -> raise Short

(* --- zero-allocation skips, for single-pass validation scans --- *)

let skip_float r =
  if r.pos + 8 > r.limit then raise Short;
  r.pos <- r.pos + 8

let skip_string r =
  let n = get_uint r in
  if n < 0 || r.pos + n > r.limit then raise Short;
  r.pos <- r.pos + n

let skip_value r =
  match byte r with
  | 1 | 2 | 4 -> ignore (get_int r)
  | 3 -> skip_string r
  | 5 | 6 -> ()
  | _ -> raise Short
