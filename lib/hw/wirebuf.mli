(** Varint wire primitives shared by the binary encodings ({!Pt.Wire}
    ring bytes, the report envelope of [Gist.Protocol.Encode]).

    Writers append to a [Buffer.t].  Readers walk a string with a
    mutable cursor and allocate nothing per scalar read; a read that
    would run past the end raises {!Short} (callers map it to their own
    typed truncation error) — no primitive ever reads out of bounds. *)

exception Short

(** LEB128 varint; the argument must be non-negative. *)
val put_uint : Buffer.t -> int -> unit

(** Zigzag-folded varint: small magnitudes of either sign stay one
    byte. *)
val put_int : Buffer.t -> int -> unit

val put_bool : Buffer.t -> bool -> unit

(** Fixed 8 bytes, little-endian IEEE bits: round-trips exactly. *)
val put_float : Buffer.t -> float -> unit

val put_string : Buffer.t -> string -> unit
val put_value : Buffer.t -> Exec.Value.t -> unit

type reader = { src : string; mutable pos : int; limit : int }

(** [reader ?pos ?limit s] reads [s.[pos .. limit-1]] (defaults: the
    whole string). *)
val reader : ?pos:int -> ?limit:int -> string -> reader

val eof : reader -> bool

(** One raw byte. @raise Short at the limit. *)
val byte : reader -> int

val get_uint : reader -> int
val get_int : reader -> int
val get_bool : reader -> bool
val get_float : reader -> float
val get_string : reader -> string
val get_value : reader -> Exec.Value.t

(** Zero-allocation skips for single-pass validation scans: advance
    the cursor past one encoded payload without materialising it. *)

val skip_float : reader -> unit
val skip_string : reader -> unit
val skip_value : reader -> unit
