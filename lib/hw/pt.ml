(* An Intel Processor Trace simulator.

   Like the real feature (paper §3.2.2 and §6), it:
   - records only control flow: conditional-branch outcomes as TNT bits
     and return targets as TIP packets, delimited by PGE/PGD packets
     when tracing is toggled at runtime;
   - produces per-thread streams with *no order across threads* (the
     paper's per-core partial-order limitation; Gist compensates with
     hardware watchpoints);
   - carries no data values;
   - has a byte-accounted trace volume feeding the overhead model.

   Streams are packed: each per-thread stream is a growable packet
   array appended in place (real PT writes into a ring of physical
   pages), and pending TNT bits live in a fixed 8-slot buffer, so
   recording allocates nothing per packet beyond the packet itself.
   [packets_of] reads the array front to back — the same oldest-first
   order the previous newest-first list representation produced after
   its reversal.

   The decoder reconstructs the executed instruction sequence between
   each PGE/PGD pair by re-walking the program, consuming one TNT bit
   per conditional branch and one TIP per return.  The walk runs on the
   lowered successor table ([Ir.Lowered.l_dsteps], memoised by
   [Analysis.Cache.lowered]): one array load per reconstructed
   instruction, instead of a by-iid Hashtbl probe, a function-table
   lookup and an O(blocks) label scan. *)

open Ir.Types

(* A PTWRITE-style data packet: the hardware extension the paper's §6
   proposes ("if Intel PT also captured data addresses and values along
   with the control-flow, we could eliminate the need for hardware
   watchpoints and the complexity of a cooperative approach").  The TSC
   payload gives data packets a global order across per-thread streams,
   as real PTWRITE+TSC packets would. *)
type ptw = {
  p_tsc : int;
  p_iid : iid;
  p_addr : int;
  p_write : bool;
  p_value : Exec.Value.t;
}

type packet =
  | PGE of iid        (* trace enabled; payload = first traced pc *)
  | PGD of iid        (* trace disabled; payload = disable pc, -1 if truncated *)
  | TNT of bool list  (* up to 8 branch outcomes, oldest first *)
  | TIP of iid        (* return target; 0 = thread exit *)
  | PTW of ptw        (* extension: a data packet (address + value + TSC) *)

let packet_bytes = function
  | PGE _ -> 8
  | PGD _ -> 2
  | TNT _ -> 1
  | TIP _ -> 5
  | PTW _ -> 10

type stream = {
  s_tid : int;
  mutable enabled : bool;
  mutable buf : packet array;    (* packed ring; [buf.(0 .. len-1)] used *)
  mutable len : int;
  tnt_buf : bool array;          (* pending TNT bits, oldest first *)
  mutable tnt_len : int;         (* < 8 *)
  mutable last_pc : int;         (* last pc seen while enabled (FUP) *)
}

type recorder = {
  counters : Exec.Cost.t;
  streams : (int, stream) Hashtbl.t;
  mutable tsc : int; (* global timestamp counter for PTW packets *)
}

let create counters = { counters; streams = Hashtbl.create 8; tsc = 0 }

(* The array slots beyond [len] need a placeholder; PGD (-1) is as good
   as any and never read. *)
let placeholder = PGD (-1)

let stream r tid =
  match Hashtbl.find_opt r.streams tid with
  | Some s -> s
  | None ->
    let s =
      {
        s_tid = tid;
        enabled = false;
        buf = Array.make 64 placeholder;
        len = 0;
        tnt_buf = Array.make 8 false;
        tnt_len = 0;
        last_pc = -1;
      }
    in
    Hashtbl.replace r.streams tid s;
    s

let emit r s p =
  if s.len = Array.length s.buf then begin
    let bigger = Array.make (2 * s.len) placeholder in
    Array.blit s.buf 0 bigger 0 s.len;
    s.buf <- bigger
  end;
  s.buf.(s.len) <- p;
  s.len <- s.len + 1;
  r.counters.pt_packets <- r.counters.pt_packets + 1;
  r.counters.pt_bytes <- r.counters.pt_bytes + packet_bytes p

let flush_tnt r s =
  if s.tnt_len > 0 then begin
    emit r s (TNT (Array.to_list (Array.sub s.tnt_buf 0 s.tnt_len)));
    s.tnt_len <- 0
  end

let enabled r tid = (stream r tid).enabled

let enable r ~tid ~pc =
  let s = stream r tid in
  if not s.enabled then begin
    s.enabled <- true;
    emit r s (PGE pc);
    r.counters.pt_toggles <- r.counters.pt_toggles + 1
  end

let disable r ~tid ~pc =
  let s = stream r tid in
  if s.enabled then begin
    flush_tnt r s;
    emit r s (PGD pc);
    s.enabled <- false;
    r.counters.pt_toggles <- r.counters.pt_toggles + 1
  end

(* Track the current pc of an enabled stream so a crash-time flush can
   emit it, like the FUP accompanying a real PGD. *)
let note_pc r ~tid ~pc =
  let s = stream r tid in
  if s.enabled then s.last_pc <- pc

let on_branch r ~tid ~taken =
  let s = stream r tid in
  if s.enabled then begin
    s.tnt_buf.(s.tnt_len) <- taken;
    s.tnt_len <- s.tnt_len + 1;
    if s.tnt_len >= 8 then flush_tnt r s
  end

let on_ret r ~tid ~resume =
  let s = stream r tid in
  if s.enabled then begin
    flush_tnt r s;
    match resume with
    | Some i -> emit r s (TIP i)
    | None ->
      (* Thread exit: the return completed, so the segment closes with
         a sentinel PGD (-2) that never truncates the decode. *)
      emit r s (TIP 0);
      emit r s (PGD (-2));
      s.enabled <- false
  end

(* Extension: emit a PTWRITE-style data packet for an instrumented
   access (only while the stream is tracing). *)
let on_data r ~tid ~iid ~addr ~rw ~value =
  let s = stream r tid in
  if s.enabled then begin
    flush_tnt r s;
    r.tsc <- r.tsc + 1;
    emit r s
      (PTW
         {
           p_tsc = r.tsc;
           p_iid = iid;
           p_addr = addr;
           p_write = (rw = Exec.Interp.Write);
           p_value = value;
         })
  end

(* End of run: close any stream still tracing (e.g. the run crashed).
   The PGD carries -1: the decoder stops at the last packet-backed
   position, like a real decoder facing a truncated trace. *)
let finish r =
  Hashtbl.iter
    (fun _ s ->
      if s.enabled then begin
        flush_tnt r s;
        emit r s (PGD s.last_pc);
        s.enabled <- false
      end)
    r.streams

let packets_of r tid =
  let s = stream r tid in
  Array.to_list (Array.sub s.buf 0 s.len)

let all_tids r =
  Hashtbl.fold (fun tid _ acc -> tid :: acc) r.streams [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Typed decode faults, shared by the byte-level ring codec below and
   the control-flow walk: a damaged stream yields the clean decoded
   prefix plus one of these, never an out-of-bounds access.  Crash
   truncation is NOT an error -- [finish] terminates a crashed stream
   with a PGD, so a missing terminator can only mean the ring itself
   lost its tail. *)
type error =
  | Empty_stream            (* the ring arrived with no bytes at all *)
  | Truncated               (* stream does not end with a PGD *)
  | Bad_target of int       (* transfer target outside the program *)
  | Malformed_packet of string

let error_to_string = function
  | Empty_stream -> "empty ring (no bytes arrived)"
  | Truncated -> "truncated stream (missing PGD terminator)"
  | Bad_target pc -> Printf.sprintf "transfer target %d outside the program" pc
  | Malformed_packet m -> m

(* ------------------------------------------------------------------ *)
(* Wire: the binary ring representation.  Real PT writes packets into a
   ring of physical pages as bytes; this codec is that ring.  Packets
   are varint-packed and iid-delta-encoded (transfer targets are near
   each other, so deltas stay in one or two bytes), and the codec is
   the layer fleet tamper models damage -- harm lands on the encoded
   bytes, exactly where a real ring is harmed.

   Layout: one magic byte, a varint packet count, then packets.  Tag
   bytes: 0x01 PGE, 0x02 PGD, 0x04 TIP, 0x05 PTW, 0x10|n an n-bit TNT
   (n in 1..8) followed by one outcome-mask byte.  All iid payloads
   (PGE/PGD/TIP targets, PTW sites) share one zigzag delta chain; PTW
   timestamps delta-encode against the previous PTW in the stream.

   The count header makes every truncation detectable: a ring that
   lost its tail either cuts a packet mid-byte ([Wirebuf.Short]) or
   ends cleanly short of the promised count -- both decode to the
   clean packet prefix plus [Truncated].  A ring with {e no} bytes is
   the distinct [Empty_stream]: a dropped ring, not a damaged one
   (fleet-health counters must not book drops as corruption). *)
module Wire = struct
  let magic = 0xB7

  type chain = { mutable last_iid : int; mutable last_tsc : int }

  let add_packet b ch p =
    let delta_iid iid =
      let d = iid - ch.last_iid in
      ch.last_iid <- iid;
      Wirebuf.put_int b d
    in
    match p with
    | PGE pc ->
      Buffer.add_char b '\001';
      delta_iid pc
    | PGD pc ->
      Buffer.add_char b '\002';
      delta_iid pc
    | TIP pc ->
      Buffer.add_char b '\004';
      delta_iid pc
    | TNT bits ->
      let n = List.length bits in
      if n < 1 || n > 8 then
        invalid_arg "Pt.Wire: TNT carries 1..8 outcomes";
      Buffer.add_char b (Char.chr (0x10 lor n));
      let mask, _ =
        List.fold_left
          (fun (m, i) bit -> ((if bit then m lor (1 lsl i) else m), i + 1))
          (0, 0) bits
      in
      Buffer.add_char b (Char.chr mask)
    | PTW w ->
      Buffer.add_char b '\005';
      Wirebuf.put_uint b (w.p_tsc - ch.last_tsc);
      ch.last_tsc <- w.p_tsc;
      delta_iid w.p_iid;
      Wirebuf.put_int b w.p_addr;
      Wirebuf.put_bool b w.p_write;
      Wirebuf.put_value b w.p_value

  let encode_into b ~count packet_at =
    Buffer.add_char b (Char.chr magic);
    Wirebuf.put_uint b count;
    let ch = { last_iid = 0; last_tsc = 0 } in
    for i = 0 to count - 1 do
      add_packet b ch (packet_at i)
    done

  let encode packets =
    let b = Buffer.create (16 + (4 * List.length packets)) in
    let arr = Array.of_list packets in
    encode_into b ~count:(Array.length arr) (Array.get arr);
    Buffer.contents b

  let decode bytes =
    if String.length bytes = 0 then ([], Some Empty_stream)
    else
      let r = Wirebuf.reader bytes in
      if Wirebuf.byte r <> magic then
        ([], Some (Malformed_packet "bad ring magic"))
      else begin
        let acc = ref [] in
        let err = ref None in
        (try
           let count = Wirebuf.get_uint r in
           let ch = { last_iid = 0; last_tsc = 0 } in
           let next_iid () =
             ch.last_iid <- ch.last_iid + Wirebuf.get_int r;
             ch.last_iid
           in
           let i = ref 0 in
           while !i < count && !err = None do
             (match Wirebuf.byte r with
              | 0x01 -> acc := PGE (next_iid ()) :: !acc
              | 0x02 -> acc := PGD (next_iid ()) :: !acc
              | 0x04 -> acc := TIP (next_iid ()) :: !acc
              | 0x05 ->
                let tsc = ch.last_tsc + Wirebuf.get_uint r in
                ch.last_tsc <- tsc;
                let iid = next_iid () in
                let addr = Wirebuf.get_int r in
                let write = Wirebuf.get_bool r in
                let value = Wirebuf.get_value r in
                acc :=
                  PTW
                    {
                      p_tsc = tsc;
                      p_iid = iid;
                      p_addr = addr;
                      p_write = write;
                      p_value = value;
                    }
                  :: !acc
              | tag when tag land 0xF0 = 0x10 && tag land 0x0F >= 1
                         && tag land 0x0F <= 8 ->
                let n = tag land 0x0F in
                let mask = Wirebuf.byte r in
                acc :=
                  TNT (List.init n (fun i -> mask land (1 lsl i) <> 0)) :: !acc
              | tag ->
                err :=
                  Some
                    (Malformed_packet
                       (Printf.sprintf "unknown ring tag %#x" tag)));
             incr i
           done;
           if !err = None && !i < count then err := Some Truncated
           else if !err = None && not (Wirebuf.eof r) then
             err := Some (Malformed_packet "trailing ring bytes")
         with Wirebuf.Short -> err := Some Truncated);
        (List.rev !acc, !err)
      end
end

(* The ring as bytes, straight from the packed packet array (no
   intermediate packet list). *)
let wire_of r tid =
  let s = stream r tid in
  let b = Buffer.create (16 + (4 * s.len)) in
  Wire.encode_into b ~count:s.len (Array.get s.buf);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoder *)

type decoded = {
  d_iids : iid list;                (* executed instructions, in order *)
  d_branches : (iid * bool) list;   (* branch outcomes, in order *)
  d_data : ptw list;                (* PTWRITE data packets, in TSC order *)
}

exception Malformed of string
exception Stop_decode of error

type cursor = {
  mutable rest : packet list;
  mutable bits : bool list; (* bits of the TNT packet being consumed *)
}

let next_packet c =
  match c.rest with
  | [] -> None
  | p :: tl ->
    c.rest <- tl;
    Some p

let rec take_bit c =
  match c.bits with
  | b :: tl ->
    c.bits <- tl;
    Some b
  | [] -> (
    match c.rest with
    | TNT bits :: tl ->
      c.rest <- tl;
      c.bits <- bits;
      take_bit c
    | _ -> None)

(* Peek: is the next meaningful packet a PGD? (used to detect segment end) *)
let at_segment_end c = c.bits = [] && (match c.rest with PGD _ :: _ -> true | _ -> false)

let decode_checked program packets =
  (* No packets at all is its own condition, not a truncation: a thread
     whose stream never toggled on records nothing legitimately, while a
     dropped ring arrives empty illegitimately.  Only the caller can
     tell the two apart, so the decoder reports the fact and lets
     fleet-health accounting classify it. *)
  if packets = [] then
    ({ d_iids = []; d_branches = []; d_data = [] }, Some Empty_stream)
  else
  let dsteps = (Analysis.Cache.lowered program).Ir.Lowered.l_dsteps in
  let n = Array.length dsteps in
  (* Data packets carry their own timestamps; split them out so the
     control-flow walk sees a pure branch/transfer stream. *)
  let data, control =
    List.partition_map
      (function PTW w -> Left w | p -> Right p)
      packets
  in
  let data = List.sort (fun a b -> compare a.p_tsc b.p_tsc) data in
  let err = ref None in
  (* A complete stream is PGD-terminated: [finish] closes every
     still-enabled stream, so a non-PGD tail means the ring lost
     packets.  The prefix below still decodes. *)
  (match List.rev control with
   | last :: _ when (match last with PGD _ -> false | _ -> true) ->
     err := Some Truncated
   | _ -> ());
  let c = { rest = control; bits = [] } in
  let iids = ref [] and branches = ref [] in
  (* Decode one segment starting at [pc], until the PGD. *)
  let rec walk pc stop_pc =
    if pc = stop_pc then ()
    else if pc < 0 || pc >= n then
      (* A packet-carried target (PGE start or TIP resume) pointing
         outside the program: damaged stream, stop here. *)
      raise (Stop_decode (Bad_target pc))
    else begin
      iids := pc :: !iids;
      (* Straight-line instructions fall through — unless the trace is
         truncated (the run crashed while tracing), in which case the
         walk stops at the last packet-backed point rather than walking
         past the crash. *)
      let fall next =
        if stop_pc = -1 && c.bits = [] && c.rest = [] then ()
        else if stop_pc = -1 && at_segment_end c then ()
        else next ()
      in
      match dsteps.(pc) with
      | Ir.Lowered.D_jump target -> walk target stop_pc
      | Ir.Lowered.D_branch (bt, be) -> (
        match take_bit c with
        | None -> (
          (* No bit left: legitimate only when the stream ends here or
             at the segment's PGD (execution crashed at/just after this
             branch); anything else sitting where branch bits belong is
             damage. *)
          match c.rest with
          | [] | PGD _ :: _ -> ()
          | _ -> raise (Stop_decode (Malformed_packet "expected branch bits")))
        | Some taken ->
          branches := (pc, taken) :: !branches;
          walk (if taken then bt else be) stop_pc)
      | Ir.Lowered.D_call entry -> walk entry stop_pc
      | Ir.Lowered.D_ret -> (
        match next_packet c with
        | Some (TIP 0) -> () (* thread exit *)
        | Some (TIP resume) -> walk resume stop_pc
        | Some (PGD _) | None -> () (* truncated *)
        | Some _ ->
          raise (Stop_decode (Malformed_packet "expected TIP after return")))
      | Ir.Lowered.D_fall next_pc -> fall (fun () -> walk next_pc stop_pc)
      | Ir.Lowered.D_stop ->
        fall (fun () ->
            raise (Stop_decode (Malformed_packet "fell off block end")))
    end
  in
  let rec segments () =
    match next_packet c with
    | None -> ()
    | Some (PGE start) ->
      let stop_pc =
        (* Scan ahead for this segment's PGD payload (the disable pc). *)
        let rec scan = function
          | PGD pc :: _ -> pc
          | _ :: tl -> scan tl
          | [] -> -1
        in
        scan c.rest
      in
      walk start stop_pc;
      (* Consume through the PGD. *)
      let rec drop () =
        match next_packet c with
        | Some (PGD _) | None -> ()
        | Some _ -> drop ()
      in
      drop ();
      c.bits <- [];
      segments ()
    | Some _ ->
      raise (Stop_decode (Malformed_packet "expected PGE at segment start"))
  in
  (try segments () with Stop_decode e -> if !err = None then err := Some e);
  ( { d_iids = List.rev !iids; d_branches = List.rev !branches; d_data = data },
    !err )

let decode program packets =
  match decode_checked program packets with
  | d, None -> d
  (* A never-enabled stream is benign here: [decode] predates fleet
     health accounting and its callers treat "no packets" as "ran
     nothing traced". *)
  | d, Some Empty_stream -> d
  | _, Some e -> raise (Malformed (error_to_string e))

(* Decode every stream of a recorder. *)
let decode_all r program =
  List.map (fun tid -> (tid, decode program (packets_of r tid))) (all_tids r)
