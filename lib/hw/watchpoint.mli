(** Hardware watchpoints: x86 exposes four debug registers (DR0-DR3,
    paper §3.2.3).  Traps record a globally sequenced access —
    watchpoints are Gist's only source of {e total} cross-thread order
    and of data values (Intel PT provides neither). *)

open Ir.Types

type trap = {
  w_seq : int;           (** global order among traps *)
  w_tid : int;
  w_iid : iid;           (** the accessing statement (the trap pc) *)
  w_addr : int;
  w_rw : Exec.Interp.rw;
  w_value : Exec.Value.t;
}

type t

(** [create ?capacity counters]: [capacity] defaults to 4 (the x86
    debug-register budget); arms and traps account into [counters]. *)
val create : ?capacity:int -> Exec.Cost.t -> t

val watched : t -> int -> bool
val free_slots : t -> int

(** [arm t addr] is false when out of slots or already watching
    [addr]. *)
val arm : t -> int -> bool

val disarm : t -> int -> unit

(** The interpreter's [mem_access] hook: records a trap when [addr]
    is watched. *)
val on_access :
  t -> tid:int -> iid:iid -> addr:int -> rw:Exec.Interp.rw ->
  value:Exec.Value.t -> unit

(** Traps in global order. *)
val traps : t -> trap list
