(* ASCII rendering of failure sketches, in the style of the paper's
   Figs 1, 7 and 8: a Time column, one column per thread, highlighted
   failure predictors in [* ... *] boxes and data values in { }. *)

let column_width = 40

let pad s w =
  let n = String.length s in
  if n >= w then String.sub s 0 w else s ^ String.make (w - n) ' '

let render_step_text (s : Sketch.step) =
  let base = s.text in
  let base = if s.highlight then "[*] " ^ base else "    " ^ base in
  match s.value_note with
  | Some v -> Printf.sprintf "%s  {%s}" base v
  | None -> base

let render (t : Sketch.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  out "Failure Sketch for %s" t.bug_name;
  out "Type: %s" t.failure_type;
  let threads =
    match t.threads with [] -> [ t.failure.tid ] | l -> l
  in
  let header =
    "Time | "
    ^ String.concat " | "
        (List.mapi (fun k _ -> pad (Printf.sprintf "Thread T%d" (k + 1)) column_width)
           threads)
  in
  out "%s" header;
  out "%s" (String.make (String.length header) '-');
  (* Collapse consecutive steps of one thread on the same source line
     into a single row (sketches are source-level, Figs 1/7/8); a
     highlighted or annotated instruction wins the row. *)
  let rows =
    let rec group acc = function
      | [] -> List.rev acc
      | (s : Sketch.step) :: rest -> (
        match acc with
        | (prev : Sketch.step) :: acc_tl
          when prev.tid = s.tid && prev.loc = s.loc ->
          let keep =
            if s.highlight || s.value_note <> None then s
            else { prev with iid = prev.iid }
          in
          group ({ keep with step_no = prev.step_no } :: acc_tl) rest
        | _ -> group (s :: acc) rest)
    in
    group [] t.steps
  in
  List.iteri
    (fun k (s : Sketch.step) ->
      let cells =
        List.map
          (fun tid ->
            if tid = s.tid then pad (render_step_text s) column_width
            else pad "" column_width)
          threads
      in
      out "%4d | %s" (k + 1) (String.concat " | " cells))
    rows;
  out "%s" (String.make (String.length header) '-');
  out "Failure: %s" (Exec.Failure.kind_to_string t.failure.kind);
  let best = Predict.Stats.best_per_kind t.predictors in
  if best <> [] then begin
    out "";
    out "Top failure predictors (F-measure, beta=0.5):";
    List.iter
      (fun r -> out "  %s" (Fmt.str "%a" Predict.Stats.pp_ranked r))
      best
  end;
  Buffer.contents buf

let print t = print_string (render t)
