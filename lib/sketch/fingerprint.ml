(* Stable failure fingerprints for triage-time deduplication.

   The fingerprint must identify "the same bug" across submissions
   that differ in everything Gist does not care about: the session
   name, which client observed the failure (tid), the free-text
   message, and the pool size used to diagnose.  It therefore folds
   only inputs that are pure functions of (program, failure site):

   - the failure pattern: the coarse failure kind, the call stack
     (function names), and the failing statement identified by its
     source location and instruction shape — never by [iid], which is
     a program-load artifact, and never by [tid] or [message];
   - the normalized static slice: for every slice entry, its distance
     from the failure and the statement's (source line, instruction
     shape, source text).  The slice is deterministic (Slicer.compute
     is a pure fixpoint) and independent of the pool, so the fold is
     too;
   - a caller-supplied salt, used by the service to keep differently
     configured diagnoses of the same bug apart (a diagnosis under
     different config is a different artifact).

   Two helpers serve the collision audit: [predictor_pattern]
   canonicalizes a ranked predictor list in source-line terms, so
   tests can check that equal fingerprints imply equal diagnosis
   patterns and that distinct injected bugs get distinct
   fingerprints. *)

type t = int

(* Same splitmix64 finalizer the service digests use
   (Faults.Fault.mix is out of reach from this library). *)
let mix a b =
  let open Int64 in
  let z = add (of_int a) (mul (of_int b) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logand (logxor z (shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

(* Structural hash with a deep traversal limit: the default
   [Hashtbl.hash] stops after 10 meaningful nodes, which would make
   two long instruction kinds collide by truncation. *)
let deep_hash v = Hashtbl.hash_param 128 256 v

let hash_instr (i : Ir.Types.instr) =
  (* [iid] deliberately excluded: it is renumbered when a program is
     reloaded.  Everything else — the kind's operands and labels, the
     source location, the source text — is load-order independent. *)
  mix (deep_hash i.Ir.Types.kind)
    (mix i.Ir.Types.loc.Ir.Types.line (deep_hash i.Ir.Types.text))

let hash_failure (program : Ir.Types.program) (r : Exec.Failure.report) =
  let site =
    match Hashtbl.find_opt program.Ir.Types.by_iid r.Exec.Failure.pc with
    | Some (i, _) -> hash_instr i
    | None -> 0
  in
  let h = mix 0x51CE (deep_hash (Exec.Failure.kind_tag r.Exec.Failure.kind)) in
  let h =
    List.fold_left (fun acc f -> mix acc (deep_hash f)) h r.Exec.Failure.stack
  in
  mix h site

let hash_slice (s : Slicing.Slicer.t) =
  let program = s.Slicing.Slicer.program in
  List.fold_left
    (fun acc (e : Slicing.Slicer.entry) ->
      let stmt =
        match
          Hashtbl.find_opt program.Ir.Types.by_iid e.Slicing.Slicer.e_iid
        with
        | Some (i, _) -> hash_instr i
        | None -> 0
      in
      mix acc (mix e.Slicing.Slicer.e_dist stmt))
    0x51CE5 s.Slicing.Slicer.entries

let of_slice ?(salt = 0) program report slice =
  mix (mix salt (hash_failure program report)) (hash_slice slice)

let compute ?salt program report =
  of_slice ?salt program report (Slicing.Slicer.compute program report)

let to_int fp = fp
let equal (a : t) b = a = b
let compare (a : t) b = Int.compare a b
let to_hex fp = Printf.sprintf "%012x" (fp land 0xFFFFFFFFFFFF)
let pp ppf fp = Format.pp_print_string ppf (to_hex fp)

(* ------------------------------------------------------------------ *)
(* Predictor-pattern canonicalization, for the collision audit and
   per-cluster artifacts.  Line-based (iids do not survive program
   reload), order-insensitive (sorted), duplicate-free. *)

let line_of (program : Ir.Types.program) iid =
  match Hashtbl.find_opt program.Ir.Types.by_iid iid with
  | Some (i, _) -> i.Ir.Types.loc.Ir.Types.line
  | None -> -1

let describe_predictor program (p : Predict.Predictor.t) =
  match p with
  | Predict.Predictor.Branch_taken (iid, taken) ->
    Printf.sprintf "branch@%d=%b" (line_of program iid) taken
  | Predict.Predictor.Data_value (iid, v) ->
    Printf.sprintf "value@%d=%s" (line_of program iid) v
  | Predict.Predictor.Value_range (iid, pred) ->
    Printf.sprintf "range@%d%s" (line_of program iid) pred
  | Predict.Predictor.Race (pat, a, b) ->
    Printf.sprintf "race:%s@%d->%d" pat (line_of program a) (line_of program b)
  | Predict.Predictor.Atomicity (pat, a, b, c) ->
    Printf.sprintf "atom:%s@%d-%d-%d" pat (line_of program a)
      (line_of program b) (line_of program c)

let predictor_pattern program preds =
  List.map (describe_predictor program) preds
  |> List.sort_uniq String.compare
  |> String.concat ";"

let pattern_of_ranked program (ranked : Predict.Stats.ranked list) =
  predictor_pattern program
    (List.map (fun r -> r.Predict.Stats.predictor) ranked)
