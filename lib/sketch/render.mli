(** ASCII rendering of failure sketches, in the style of the paper's
    Figs 1, 7 and 8: a Time column, one column per thread, highlighted
    failure predictors marked [\[*\]] and data values in [{ }].
    Consecutive steps of one thread on the same source line collapse
    into a single row (sketches are source-level). *)

val render : Sketch.t -> string
val print : Sketch.t -> unit
