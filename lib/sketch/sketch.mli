(** The failure sketch (paper §1, Figs 1, 7, 8): per-thread columns of
    the statements leading to the failure, a global step order, and the
    highest-ranked failure predictors highlighted with data values. *)

open Ir.Types

type step = {
  step_no : int;
  tid : int;
  iid : iid;
  loc : loc;
  text : string;
  highlight : bool;            (** part of a top failure predictor *)
  value_note : string option;  (** e.g. the "0" of "f->mut = 0" in Fig. 1 *)
}

type t = {
  bug_name : string;
  failure_type : string;
  failure : Exec.Failure.report;
  steps : step list;   (** ordered by step number *)
  threads : int list;  (** display order *)
  predictors : Predict.Stats.ranked list;
}

(** Statements the sketch contains, deduplicated and sorted. *)
val iids : t -> iid list

(** First-occurrence statement order — what ordering accuracy compares
    against the ideal order. *)
val statement_order : t -> iid list

val source_loc_count : Ir.Types.program -> t -> int
val instr_count : t -> int

(** Build a sketch from a representative monitored failing run.

    [per_thread] gives, per thread, the refined-slice statements in the
    thread's PT-decoded execution order ({e with} repeats: the builder
    keeps each statement's last occurrence, the instance adjacent to
    the failure); [traps] is the watchpoint log, the only source of
    cross-thread order (PT streams are per-core partial orders, §6);
    [ranked] is the predictor ranking across all runs — the best per
    kind is highlighted and data values annotated. *)
val build :
  bug_name:string ->
  failure_type:string ->
  program:program ->
  failure:Exec.Failure.report ->
  per_thread:(int * iid list) list ->
  traps:Hw.Watchpoint.trap list ->
  ranked:Predict.Stats.ranked list ->
  t
