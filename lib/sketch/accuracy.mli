(** Sketch accuracy (paper §5.2).

    Relevance  A_R = 100 * |G intersect I| / |G union I| over IR
    instructions; ordering A_O = 100 * (1 - tau / pairs) where tau is
    the Kendall tau distance between the sketch's statement order and
    the ideal order, restricted to the statements both contain;
    overall A = (A_R + A_O) / 2. *)

open Ir.Types

(** The hand-built ideal sketch: its statements in ideal execution
    order. *)
type ideal = { i_iids : iid list }

type result = {
  relevance : float;
  ordering : float;
  overall : float;
  n_gist : int;
  n_ideal : int;
  n_common : int;
}

(** [kendall_tau a b] is [(discordant pairs, total pairs)] over the
    elements present in both lists (duplicates ignored). *)
val kendall_tau : 'a list -> 'a list -> int * int

val compute : gist_order:iid list -> ideal:ideal -> result
val of_sketch : Sketch.t -> ideal:ideal -> result
