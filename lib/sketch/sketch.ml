(* The failure sketch (paper §1, Figs 1, 7, 8): per-thread columns of
   the statements leading to the failure, a global step order, and the
   highest-ranked failure predictors highlighted with data values. *)

open Ir.Types

type step = {
  step_no : int;
  tid : int;
  iid : iid;
  loc : loc;
  text : string;
  highlight : bool;        (* part of a top failure predictor *)
  value_note : string option; (* e.g. "f->mut = 0" *)
}

type t = {
  bug_name : string;
  failure_type : string;
  failure : Exec.Failure.report;
  steps : step list;           (* ordered by step_no *)
  threads : int list;          (* display order *)
  predictors : Predict.Stats.ranked list;
}

(* Statements the sketch contains, deduplicated. *)
let iids t = List.map (fun s -> s.iid) t.steps |> List.sort_uniq compare

(* First-occurrence statement order (for ordering accuracy). *)
let statement_order t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.iid then None
      else begin
        Hashtbl.replace seen s.iid ();
        Some s.iid
      end)
    t.steps

let source_loc_count program t = Ir.Program.source_loc_count program (iids t)
let instr_count t = List.length (iids t)

(* ------------------------------------------------------------------ *)
(* Construction.

   Inputs, all from the monitored failing run that Gist selected as
   representative:
   - [per_thread]: for each thread, the statements (from the refined
     slice) in that thread's PT-decoded execution order (first
     occurrence only);
   - [traps]: the watchpoint log, the only source of *cross-thread*
     order (PT streams are per-core partial orders, §6);
   - [ranked]: predictor ranking across all runs (best per kind is
     highlighted). *)

let build ~bug_name ~failure_type ~program ~(failure : Exec.Failure.report)
    ~(per_thread : (int * iid list) list)
    ~(traps : Hw.Watchpoint.trap list)
    ~(ranked : Predict.Stats.ranked list) : t =
  let best = Predict.Stats.best_per_kind ranked in
  let highlight_iids =
    List.concat_map
      (fun (r : Predict.Stats.ranked) ->
        match r.predictor with
        | Predict.Predictor.Branch_taken (i, _) -> [ i ]
        | Data_value (i, _) | Value_range (i, _) -> [ i ]
        | Race (_, a, b) -> [ a; b ]
        | Atomicity (_, a, b, c) -> [ a; b; c ])
      best
  in
  let value_note_for iid =
    List.find_map
      (fun (r : Predict.Stats.ranked) ->
        match r.predictor with
        | Predict.Predictor.Data_value (i, v) when i = iid -> Some v
        | Predict.Predictor.Value_range (i, p) when i = iid -> Some p
        | _ -> None)
      best
  in
  (* Anchor each per-thread element to the last watchpoint sequence
     number at or before it (watchpoints provide the cross-thread
     ordering, program order the rest), keep each statement's *last*
     occurrence per thread (the instances adjacent to the failure: a
     sketch shows the failing iteration, not the first one), then sort. *)
  (* Traps indexed by (tid, iid): the k-th occurrence of a statement in
     a thread's decoded sequence anchors to the k-th trap of that
     statement (clamped -- early occurrences may predate arming). *)
  let trap_index : (int * int, int array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (w : Hw.Watchpoint.trap) ->
      let key = (w.w_tid, w.w_iid) in
      let cur = Option.value ~default:[||] (Hashtbl.find_opt trap_index key) in
      Hashtbl.replace trap_index key (Array.append cur [| w.w_seq |]))
    traps;
  let elements = ref [] in
  List.iter
    (fun (tid, seq) ->
      let anchor = ref 0 in
      let occurrences = Hashtbl.create 16 in
      let last = Hashtbl.create 16 in
      List.iteri
        (fun pos iid ->
          let k = Option.value ~default:0 (Hashtbl.find_opt occurrences iid) in
          Hashtbl.replace occurrences iid (k + 1);
          (match Hashtbl.find_opt trap_index (tid, iid) with
           | Some seqs when Array.length seqs > 0 ->
             let j = min k (Array.length seqs - 1) in
             anchor := max !anchor seqs.(j)
           | _ -> ());
          Hashtbl.replace last iid (!anchor, tid, pos, iid))
        seq;
      Hashtbl.iter (fun _ e -> elements := e :: !elements) last)
    per_thread;
  let ordered =
    List.sort
      (fun (a1, t1, p1, _) (a2, t2, p2, _) -> compare (a1, t1, p1) (a2, t2, p2))
      !elements
  in
  (* Display text: the instruction's own source text, or (for helper
     instructions carrying no text) the text of a sibling on the same
     source line, falling back to raw IR. *)
  let text_for (i : instr) =
    if i.text <> "" then i.text
    else
      let sibling =
        List.find_opt
          (fun (j : instr) -> j.loc = i.loc && j.text <> "")
          (Ir.Program.all_instrs program)
      in
      match sibling with
      | Some j -> j.text
      | None -> Ir.Pp.instr_to_string i
  in
  let steps =
    List.mapi
      (fun k (_, tid, _, iid) ->
        let i = Ir.Program.instr_at program iid in
        {
          step_no = k + 1;
          tid;
          iid;
          loc = i.loc;
          text = text_for i;
          highlight = List.mem iid highlight_iids;
          value_note = value_note_for iid;
        })
      ordered
  in
  let threads = List.map fst per_thread in
  { bug_name; failure_type; failure; steps; threads; predictors = ranked }
