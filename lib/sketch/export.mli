(** JSON export of failure sketches, for IDE/tooling integration (the
    paper's prototype hooked sketches into KCachegrind, §5.1). *)

(** JSON-escape a string's content (no surrounding quotes). *)
val escape : string -> string

(** The sketch as a self-contained JSON object: bug header, failure
    (kind/pc/thread/stack), ordered steps (thread, location, text,
    highlight, value note), and every ranked predictor. *)
val to_json : Sketch.t -> string
