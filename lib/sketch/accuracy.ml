(* Sketch accuracy (paper §5.2).

   Relevance  A_R = 100 * |G ∩ I| / |G ∪ I|   over IR instructions.
   Ordering   A_O = 100 * (1 - tau / #pairs)  where tau is the Kendall
   tau distance between the sketch's statement order and the ideal
   order, restricted to the statements both contain.
   Overall    A   = (A_R + A_O) / 2. *)

open Ir.Types

type ideal = {
  i_iids : iid list; (* ideal statements, in ideal execution order *)
}

type result = {
  relevance : float;
  ordering : float;
  overall : float;
  n_gist : int;
  n_ideal : int;
  n_common : int;
}

module IntSet = Set.Make (Int)

(* Number of discordant pairs between two orderings of the same
   element set (elements present in both lists; duplicates ignored). *)
let kendall_tau order_a order_b =
  let index l =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun k x -> if not (Hashtbl.mem tbl x) then Hashtbl.add tbl x k) l;
    tbl
  in
  let ia = index order_a and ib = index order_b in
  let common =
    List.filter (Hashtbl.mem ib) order_a
    |> List.sort_uniq compare
  in
  let arr = Array.of_list common in
  let n = Array.length arr in
  let tau = ref 0 and pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr pairs;
      let a = arr.(i) and b = arr.(j) in
      let da = compare (Hashtbl.find ia a) (Hashtbl.find ia b) in
      let db = compare (Hashtbl.find ib a) (Hashtbl.find ib b) in
      if da * db < 0 then incr tau
    done
  done;
  (!tau, !pairs)

let compute ~(gist_order : iid list) ~(ideal : ideal) : result =
  let g = IntSet.of_list gist_order and i = IntSet.of_list ideal.i_iids in
  let inter = IntSet.inter g i and union = IntSet.union g i in
  let relevance =
    if IntSet.is_empty union then 100.0
    else
      100.0
      *. float_of_int (IntSet.cardinal inter)
      /. float_of_int (IntSet.cardinal union)
  in
  let tau, pairs = kendall_tau gist_order ideal.i_iids in
  let ordering =
    if pairs = 0 then 100.0
    else 100.0 *. (1.0 -. (float_of_int tau /. float_of_int pairs))
  in
  {
    relevance;
    ordering;
    overall = (relevance +. ordering) /. 2.0;
    n_gist = IntSet.cardinal g;
    n_ideal = IntSet.cardinal i;
    n_common = IntSet.cardinal inter;
  }

let of_sketch (sketch : Sketch.t) ~(ideal : ideal) =
  compute ~gist_order:(Sketch.statement_order sketch) ~ideal
