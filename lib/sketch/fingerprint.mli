(** Stable failure fingerprints for triage-time deduplication.

    A fingerprint identifies a bug by what survives recurrence: the
    failure pattern (kind, stack, failing statement by source shape)
    and the normalized static slice — never by session name, client
    id ([tid]), free-text message, instruction id, or pool size.  Two
    submissions of the same (program, failure, salt) always fingerprint
    equal; the qcheck suite and the Bugbase/fuzz collision audit pin
    the invariances down. *)

type t

(** [compute ?salt program report] slices backward from the report
    and folds the normalized slice with the normalized failure
    pattern.  [salt] (default 0) keeps differently configured
    diagnoses of the same bug apart — the service salts with a digest
    of the diagnosis-relevant config. *)
val compute : ?salt:int -> Ir.Types.program -> Exec.Failure.report -> t

(** [of_slice ?salt program report slice] is {!compute} with the
    slice already in hand (it is deterministic, so precomputing is
    safe). *)
val of_slice :
  ?salt:int -> Ir.Types.program -> Exec.Failure.report -> Slicing.Slicer.t -> t

(** Non-negative, stable across processes for the same inputs. *)
val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** 12 hex digits, the display form used by [serve --status]. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Predictor patterns}

    Canonical source-line rendering of a predictor set: sorted,
    deduplicated, iid-free.  Equal triage fingerprints must yield
    equal patterns once diagnosed — the collision audit checks
    exactly that. *)

val describe_predictor : Ir.Types.program -> Predict.Predictor.t -> string
val predictor_pattern : Ir.Types.program -> Predict.Predictor.t list -> string
val pattern_of_ranked : Ir.Types.program -> Predict.Stats.ranked list -> string
