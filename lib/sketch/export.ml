(* JSON export of failure sketches, for IDE/tooling integration (the
   paper integrated Gist with KCachegrind for navigation, §5.1; a
   structured export is the equivalent hook).  Hand-rolled emission:
   the schema is small and the repository carries no JSON dependency. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let j_str s = "\"" ^ escape s ^ "\""
let j_field k v = j_str k ^ ":" ^ v
let j_obj fields = "{" ^ String.concat "," fields ^ "}"
let j_arr items = "[" ^ String.concat "," items ^ "]"
let j_bool b = if b then "true" else "false"

let step_json (s : Sketch.step) =
  j_obj
    ([
       j_field "step" (string_of_int s.step_no);
       j_field "thread" (string_of_int s.tid);
       j_field "iid" (string_of_int s.iid);
       j_field "file" (j_str s.loc.file);
       j_field "line" (string_of_int s.loc.line);
       j_field "text" (j_str s.text);
       j_field "highlight" (j_bool s.highlight);
     ]
    @ match s.value_note with
      | Some v -> [ j_field "value" (j_str v) ]
      | None -> [])

let predictor_json (r : Predict.Stats.ranked) =
  j_obj
    [
      j_field "kind" (j_str (Predict.Predictor.kind_name r.predictor));
      j_field "description" (j_str (Predict.Predictor.to_string r.predictor));
      j_field "precision" (Printf.sprintf "%.4f" r.precision);
      j_field "recall" (Printf.sprintf "%.4f" r.recall);
      j_field "f_measure" (Printf.sprintf "%.4f" r.f_measure);
      j_field "failing_runs" (string_of_int r.n_failing_with);
      j_field "successful_runs" (string_of_int r.n_success_with);
    ]

(* The sketch as a JSON object: header, failure, ordered steps, and the
   ranked predictors (all of them; consumers can truncate). *)
let to_json (t : Sketch.t) =
  j_obj
    [
      j_field "bug" (j_str t.bug_name);
      j_field "failure_type" (j_str t.failure_type);
      j_field "failure"
        (j_obj
           [
             j_field "kind" (j_str (Exec.Failure.kind_to_string t.failure.kind));
             j_field "pc" (string_of_int t.failure.pc);
             j_field "thread" (string_of_int t.failure.tid);
             j_field "stack" (j_arr (List.map j_str t.failure.stack));
           ]);
      j_field "threads" (j_arr (List.map string_of_int t.threads));
      j_field "steps" (j_arr (List.map step_json t.steps));
      j_field "predictors" (j_arr (List.map predictor_json t.predictors));
    ]
