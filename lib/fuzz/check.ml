(* The ground-truth oracle: run the full diagnosis pipeline on an
   injected-bug case and score the sketch's top-ranked predictor
   against the labelled root cause.

   All comparisons are in source-line terms ([describe],
   [matches_accept]): lines survive iid renumbering through the .gir
   corpus round-trip and padding removal during shrinking, iids do
   not. *)

module F = Exec.Failure
module I = Exec.Interp

type verdict =
  | Correct
  | Wrong_root_cause of string  (* normalized top predictor *)
  | No_predictor
  | No_failure
  | Divergence of string        (* engines disagree on an observable *)
  | Crash of string             (* pipeline raised *)

let verdict_name = function
  | Correct -> "correct"
  | Wrong_root_cause _ -> "wrong-root-cause"
  | No_predictor -> "no-predictor"
  | No_failure -> "no-failure"
  | Divergence _ -> "divergence"
  | Crash _ -> "crash"

let verdict_to_string = function
  | Correct -> "correct"
  | Wrong_root_cause d -> "wrong-root-cause: " ^ d
  | No_predictor -> "no-predictor"
  | No_failure -> "no-failure"
  | Divergence d -> "divergence: " ^ d
  | Crash d -> "crash: " ^ d

let verdict_equal a b = (a : verdict) = b

(* ------------------------------------------------------------------ *)
(* Line-based predictor descriptions. *)

let line_of program iid = (Ir.Program.loc_of program iid).Ir.Types.line

let describe program (p : Predict.Predictor.t) =
  let l iid = line_of program iid in
  match p with
  | Branch_taken (iid, taken) ->
    Printf.sprintf "branch@%d=%s" (l iid)
      (if taken then "taken" else "not-taken")
  | Data_value (iid, v) -> Printf.sprintf "value@%d=%s" (l iid) v
  | Value_range (iid, pred) -> Printf.sprintf "range@%d %s" (l iid) pred
  | Race (pat, a, b) -> Printf.sprintf "race:%s@%d->%d" pat (l a) (l b)
  | Atomicity (pat, a, b, c) ->
    Printf.sprintf "atom:%s@%d,%d,%d" pat (l a) (l b) (l c)

let matches_accept program (acc : Gen.accept) (p : Predict.Predictor.t) =
  let l iid = line_of program iid in
  match (acc, p) with
  | Gen.A_race (pat, la, lb), Race (pat', a, b) ->
    pat = pat' && l a = la && l b = lb
  | Gen.A_atom (pat, la, lb, lc), Atomicity (pat', a, b, c) ->
    pat = pat' && l a = la && l b = lb && l c = lc
  | Gen.A_value (line, v), Data_value (iid, v') -> l iid = line && v = v'
  | Gen.A_branch (line, taken), Branch_taken (iid, taken') ->
    l iid = line && taken = taken'
  | _ -> false

let accepted (case : Gen.case) (p : Predict.Predictor.t) =
  List.exists
    (fun acc -> matches_accept case.c_program acc p)
    case.c_truth.t_accept

(* ------------------------------------------------------------------ *)
(* Probing: engine divergence and the target failure. *)

let probe_max_steps = 50_000

(* A cheap differential smoke on two workloads: the lowered engine and
   the reference engine must agree on outcome, output and step count
   (the full observable set is covered by test_differential; this
   catches generator-exposed divergence at fuzz time). *)
let divergence case =
  let check c =
    let w = Gen.workload_of case c in
    let run engine =
      let r =
        engine ~max_steps:probe_max_steps ~preempt_prob:case.Gen.c_preempt
          case.Gen.c_program w
      in
      let out =
        match r.I.outcome with
        | I.Success -> "success"
        | I.Failed f -> F.report_to_string f
      in
      (out, r.I.output, r.I.steps)
    in
    let a =
      run (fun ~max_steps ~preempt_prob p w ->
          I.run ~max_steps ~preempt_prob p w)
    in
    let b =
      run (fun ~max_steps ~preempt_prob p w ->
          Exec.Refinterp.run ~max_steps ~preempt_prob p w)
    in
    if a <> b then
      let (oa, _, sa) = a and (ob, _, sb) = b in
      Some
        (Printf.sprintf "client %d: lowered=(%s,%d steps) ref=(%s,%d steps)" c
           oa sa ob sb)
    else None
  in
  match check 0 with Some d -> Some d | None -> check 1

type probe = {
  p_target : F.report option;  (* first failure matching the truth *)
  p_fails : int;               (* matching failures among probed clients *)
  p_succs : int;
}

let target_matches (case : Gen.case) (f : F.report) =
  F.kind_tag f.kind = case.c_truth.t_kind_tag
  && line_of case.c_program f.pc = case.c_truth.t_fail_line

(* Scan the client sequence the way [Server.first_failure] scans
   production runs, keeping counts so callers can tell an unviable
   case (never fails / never succeeds) from a diagnosable one. *)
let probe ?(max_clients = 96) (case : Gen.case) =
  let target = ref None and fails = ref 0 and succs = ref 0 in
  for c = 0 to max_clients - 1 do
    let r =
      I.run ~max_steps:probe_max_steps ~preempt_prob:case.c_preempt
        case.c_program
        (Gen.workload_of case c)
    in
    match r.I.outcome with
    | I.Success -> incr succs
    | I.Failed f when target_matches case f ->
      incr fails;
      if !target = None then target := Some f
    | I.Failed _ -> ()
  done;
  { p_target = !target; p_fails = !fails; p_succs = !succs }

let viable ?(min_fails = 3) ?(min_succs = 3) p =
  p.p_fails >= min_fails && p.p_succs >= min_succs

(* ------------------------------------------------------------------ *)
(* Diagnosis. *)

(* Statistical power matters more than fleet size here: an AsT
   iteration whose client window contains no failing run correlates
   nothing (every predictor mined in it has zero failing
   observations), and windows advance across iterations.  200 clients
   per iteration keeps >= 3 expected failures even at the ~3% failure
   rate the viability probe admits. *)
let config_of (case : Gen.case) =
  let base =
    {
      Gist.Config.default with
      fail_quota = 3;
      succ_quota = 8;
      max_clients_per_iter = 200;
      max_iterations = 6;
      max_steps = probe_max_steps;
      preempt_prob = case.c_preempt;
    }
  in
  match case.c_faults with
  | None -> base
  | Some (rates, seed) ->
    { base with Gist.Config.fault_rates = rates; fault_seed = seed }

type outcome = {
  verdict : verdict;
  top : string option;  (* normalized top predictor, if any *)
  iterations : int;
  total_runs : int;
  fleet : Gist.Server.fleet_stats option; (* present when diagnose ran *)
}

let verdict_of_sketch (case : Gen.case) (sk : Fsketch.Sketch.t) =
  match sk.predictors with
  | [] -> No_predictor
  | top :: _ ->
    if accepted case top.Predict.Stats.predictor then Correct
    else Wrong_root_cause (describe case.c_program top.Predict.Stats.predictor)

(* [check case]: divergence probe, failure probe, full [diagnose],
   verdict.  Deterministic: every stage is a pure function of the
   case, fault injection included ([c_faults] seeds its own stream).
   The probes run unmonitored -- faults only touch the monitored
   fleet.

   [early_exit] turns the sequential stopping rule on; [use_oracle]
   false drops the ground-truth accept oracle, modelling unattended
   production (the adaptive-vs-exhaustive comparisons run both modes
   this way so the stopping rule is the only difference). *)
let check ?pool ?(early_exit = false) ?(use_oracle = true) (case : Gen.case) =
  match divergence case with
  | Some d ->
    {
      verdict = Divergence d;
      top = None;
      iterations = 0;
      total_runs = 0;
      fleet = None;
    }
  | None ->
    (match probe case with
     | { p_target = None; _ } ->
       {
         verdict = No_failure;
         top = None;
         iterations = 0;
         total_runs = 0;
         fleet = None;
       }
     | { p_target = Some failure; _ } ->
       (try
          let config =
            { (config_of case) with Gist.Config.early_exit } in
          let oracle =
            if use_oracle then
              Some
                (fun (sk : Fsketch.Sketch.t) ->
                  match sk.predictors with
                  | top :: _ -> accepted case top.Predict.Stats.predictor
                  | [] -> false)
            else None
          in
          let d =
            Gist.Server.diagnose ~config ?pool ?oracle
              ~bug_name:case.c_name
              ~failure_type:(F.kind_to_string failure.F.kind)
              ~program:case.c_program
              ~workload_of:(Gen.workload_of case)
              ~failure ()
          in
          let top =
            match d.Gist.Server.sketch.predictors with
            | t :: _ -> Some (describe case.c_program t.Predict.Stats.predictor)
            | [] -> None
          in
          {
            verdict = verdict_of_sketch case d.Gist.Server.sketch;
            top;
            iterations = d.Gist.Server.iterations;
            total_runs = d.Gist.Server.total_runs;
            fleet = Some d.Gist.Server.fleet;
          }
        with e ->
          {
            verdict = Crash (Printexc.to_string e);
            top = None;
            iterations = 0;
            total_runs = 0;
            fleet = None;
          }))
