(** The ground-truth oracle: diagnose an injected-bug case end-to-end
    and score the sketch's top-ranked predictor against the label. *)

(** Everything a case can get wrong, most severe last.  Payload strings
    are normalized (source-line based), so two checks of equivalent
    programs — e.g. a case and its shrunk reproducer — yield equal
    verdicts exactly when they fail the same way. *)
type verdict =
  | Correct
  | Wrong_root_cause of string  (** normalized top predictor *)
  | No_predictor
  | No_failure
  | Divergence of string        (** execution engines disagree *)
  | Crash of string             (** the pipeline raised *)

val verdict_name : verdict -> string
val verdict_to_string : verdict -> string
val verdict_equal : verdict -> verdict -> bool

(** Line-based rendering of a predictor ("race:WR\@101->102"). *)
val describe : Ir.Types.program -> Predict.Predictor.t -> string

val matches_accept : Ir.Types.program -> Gen.accept -> Predict.Predictor.t -> bool
val accepted : Gen.case -> Predict.Predictor.t -> bool

(** {1 Probing} *)

val probe_max_steps : int

(** Quick two-workload differential check of the lowered engine against
    the reference engine; [Some detail] when they disagree. *)
val divergence : Gen.case -> string option

type probe = {
  p_target : Exec.Failure.report option;
      (** first failure matching the injected truth *)
  p_fails : int;
  p_succs : int;
}

val target_matches : Gen.case -> Exec.Failure.report -> bool

(** Scan the first [max_clients] (default 96) production runs. *)
val probe : ?max_clients:int -> Gen.case -> probe

(** A case is diagnosable when both outcomes occur in the probe
    window (defaults: 3 of each). *)
val viable : ?min_fails:int -> ?min_succs:int -> probe -> bool

(** {1 Diagnosis} *)

(** The bounded fleet configuration fuzzing runs under; the case's
    [c_faults], when present, sets the fault rates and seed. *)
val config_of : Gen.case -> Gist.Config.t

type outcome = {
  verdict : verdict;
  top : string option;  (** normalized top predictor, if any *)
  iterations : int;
  total_runs : int;
  fleet : Gist.Server.fleet_stats option;
      (** fleet-protocol health; present when diagnose ran *)
}

val verdict_of_sketch : Gen.case -> Fsketch.Sketch.t -> verdict

(** Divergence probe, failure probe, full {!Gist.Server.diagnose},
    verdict.  A pure function of the case, fault injection included;
    the probes run unmonitored (faults only touch the monitored
    fleet).

    [early_exit] (default false) turns the sequential stopping rule
    on; [use_oracle] false (default true) drops the ground-truth
    accept oracle — unattended production, as the adaptive
    early-exit comparisons require. *)
val check :
  ?pool:Parallel.Pool.t ->
  ?early_exit:bool ->
  ?use_oracle:bool ->
  Gen.case ->
  outcome
