(* Random-program generation with deliberately injected, labelled bugs.

   Two layers live here:

   - the plain well-formed-program generator ([random],
     [random_threaded]) promoted from the old test-only
     [Tsupport.Gen_prog]: seeded recipes that cannot fault, used by the
     property and differential tests; and

   - the bug-injection generator ([generate]): a *scenario* wraps one
     of the paper's root-cause patterns (the Fig. 5 atomicity
     violations RWR/WWR/RWW/WRW, the WW/WR/RW races, and the
     sequential branch/value bugs) in random but harmless padding.
     Every scenario compiles to a program whose root cause is known by
     construction, so the whole diagnosis pipeline can be checked
     against ground truth at scale.

   Kernel (injected) statements carry fixed source lines in the
   100..999 band of "fuzz.c"; scaffolding (allocs, spawns, joins) lives
   below 100 and padding at 1000+, so ground truth survives iid
   renumbering and padding removal: it is expressed in source lines,
   exactly how Gist reports sketches (paper §4). *)

open Ir.Types
module B = Ir.Builder

(* ------------------------------------------------------------------ *)
(* Statement-level AST shared by padding and injected kernels. *)

type sstmt =
  | S_assign of string * expr
  | S_store of int * operand        (* arr[k] <- v *)
  | S_load of string * int          (* fresh reg <- arr[k] *)
  | S_if of string * sstmt list * sstmt list
  | S_loop of string * int * sstmt list (* counter reg, bound, body *)
  | S_instr of instr                (* pre-located (kernel) instruction *)
  | S_if_at of instr * sstmt list * sstmt list
      (* kernel branch: the [instr] must hold a [Branch]; its labels
         are patched in at compile time *)

(* ------------------------------------------------------------------ *)
(* Random AST construction. *)

type genstate = {
  rng : Exec.Rng.t;
  mutable fresh : int;
  mutable line : int;
}

let fresh_reg g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let next_line g =
  g.line <- g.line + 1;
  g.line

let pick g l = List.nth l (Exec.Rng.int g.rng (List.length l))

let random_operand g env =
  if env <> [] && Exec.Rng.bool g.rng then Reg (pick g env)
  else Imm (Exec.Rng.int g.rng 20 - 10)

let random_expr g env =
  match Exec.Rng.int g.rng 8 with
  | 0 -> Mov (random_operand g env)
  | 1 -> Not (random_operand g env)
  | 2 ->
    (* keep division well-defined: non-zero immediate divisor *)
    Bin (Div, random_operand g env, Imm (1 + Exec.Rng.int g.rng 9))
  | 3 -> Bin (Mod, random_operand g env, Imm (1 + Exec.Rng.int g.rng 9))
  | n ->
    let op = pick g [ Add; Sub; Mul; Lt; Le; Gt; Ge; Eq; Ne; And; Or ] in
    ignore n;
    Bin (op, random_operand g env, random_operand g env)

(* Generate a statement list; [env] is threaded so every register read
   is previously defined. *)
let rec random_stmts g env depth budget =
  if budget <= 0 then ([], env)
  else
    let stmt, env =
      match Exec.Rng.int g.rng (if depth > 0 then 6 else 4) with
      | 0 | 1 ->
        let r = fresh_reg g "r" in
        (S_assign (r, random_expr g env), r :: env)
      | 2 -> (S_store (Exec.Rng.int g.rng 8, random_operand g env), env)
      | 3 ->
        let r = fresh_reg g "l" in
        (S_load (r, Exec.Rng.int g.rng 8), r :: env)
      | 4 ->
        let c = fresh_reg g "c" in
        let then_s, _ = random_stmts g (c :: env) (depth - 1) (budget / 2) in
        let else_s, _ = random_stmts g (c :: env) (depth - 1) (budget / 2) in
        (S_if (c, then_s, else_s), c :: env)
      | _ ->
        let k = fresh_reg g "k" in
        let body, _ =
          random_stmts g (k :: env) (depth - 1) (budget / 2)
        in
        (S_loop (k, 1 + Exec.Rng.int g.rng 5, body), env)
    in
    let rest, env = random_stmts g env depth (budget - 1) in
    (stmt :: rest, env)

(* ------------------------------------------------------------------ *)
(* Lowering statement lists to basic blocks. *)

let compile g ?(file = "gen.c") ?(prelude = []) stmts =
  let blocks = ref [] in
  let label_counter = ref 0 in
  let fresh_label prefix =
    incr label_counter;
    Printf.sprintf "%s%d" prefix !label_counter
  in
  let i kind = B.instr ~file ~line:(next_line g) ~text:"" kind in
  let add_block label instrs = blocks := (label, instrs) :: !blocks in
  (* [go stmts acc lbl exit]: emit [stmts] into block [lbl] (whose
     earlier instructions are [acc], reversed), ending with a jump to
     [exit]. *)
  let rec go stmts acc lbl exit =
    match stmts with
    | [] -> add_block lbl (List.rev (i (Jmp exit) :: acc))
    | S_assign (r, e) :: tl -> go tl (i (Assign (r, e)) :: acc) lbl exit
    | S_store (off, v) :: tl ->
      go tl (i (Store (Reg "arr", off, v)) :: acc) lbl exit
    | S_load (r, off) :: tl ->
      go tl (i (Load (r, Reg "arr", off)) :: acc) lbl exit
    | S_instr ins :: tl -> go tl (ins :: acc) lbl exit
    | S_if (c, then_s, else_s) :: tl ->
      let lt = fresh_label "t" and lf = fresh_label "f" in
      let lj = fresh_label "j" in
      let cond = i (Assign (c, random_expr g [])) in
      add_block lbl (List.rev (i (Branch (Reg c, lt, lf)) :: cond :: acc));
      go then_s [] lt lj;
      go else_s [] lf lj;
      go tl [] lj exit
    | S_if_at (br, then_s, else_s) :: tl ->
      let lt = fresh_label "t" and lf = fresh_label "f" in
      let lj = fresh_label "j" in
      let br =
        match br.kind with
        | Branch (cond, _, _) -> { br with kind = Branch (cond, lt, lf) }
        | _ -> br
      in
      add_block lbl (List.rev (br :: acc));
      go then_s [] lt lj;
      go else_s [] lf lj;
      go tl [] lj exit
    | S_loop (k, bound, body) :: tl ->
      let lh = fresh_label "h" and lb = fresh_label "b" in
      let li = fresh_label "i" and lx = fresh_label "x" in
      let kc = k ^ "c" in
      add_block lbl (List.rev (i (Jmp lh) :: i (Assign (k, Mov (Imm 0))) :: acc));
      add_block lh
        [
          i (Assign (kc, B.( <% ) (Reg k) (Imm bound)));
          i (Branch (Reg kc, lb, lx));
        ];
      go body [] lb li;
      add_block li
        [ i (Assign (k, B.( +% ) (Reg k) (Imm 1))); i (Jmp lh) ];
      go tl [] lx exit
  in
  go stmts (List.rev prelude) "entry" "the_end";
  add_block "the_end" [ i (Ret (Some (Imm 0))) ];
  List.rev !blocks

let alloc_prelude g =
  let i kind = B.instr ~file:"gen.c" ~line:(next_line g) ~text:"" kind in
  [ i (Malloc ("arr", 8)); i (Store (Reg "arr", 0, Imm 1)) ]

let random ?(budget = 14) ?(depth = 3) seed =
  let g = { rng = Exec.Rng.create seed; fresh = 0; line = 0 } in
  let stmts, _ = random_stmts g [] depth budget in
  let prelude = alloc_prelude g in
  let blocks =
    List.map
      (fun (label, instrs) -> B.block label instrs)
      (compile g ~prelude stmts)
  in
  Ir.Program.make ~main:"main" [ B.func "main" ~params:[ "a" ] blocks ]

(* A multithreaded variant: two workers run independently generated
   random bodies over a shared 8-cell array.  Data races abound by
   construction, but no instruction can fault (valid offsets, bounded
   loops, non-zero divisors), so outcomes are always Success -- which
   makes the variant ideal for exercising per-thread PT streams,
   record/replay of racy schedules, and instrumentation coverage under
   real interleavings. *)
let random_threaded ?(budget = 9) ?(depth = 2) seed =
  let g = { rng = Exec.Rng.create seed; fresh = 0; line = 0 } in
  let worker name =
    let stmts, _ = random_stmts g [ "a" ] depth budget in
    let blocks =
      List.map (fun (label, instrs) -> B.block label instrs)
        (compile g stmts)
    in
    B.func name ~params:[ "arr"; "a" ] blocks
  in
  let w1 = worker "worker1" and w2 = worker "worker2" in
  let i kind = B.instr ~file:"gen.c" ~line:(next_line g) ~text:"" kind in
  let main =
    B.func "main" ~params:[ "a" ]
      [
        B.block "entry"
          [
            i (Malloc ("arr", 8));
            i (Store (Reg "arr", 0, Imm 1));
            i (Spawn ("t1", "worker1", [ Reg "arr"; Reg "a" ]));
            i (Spawn ("t2", "worker2", [ Reg "arr"; Reg "a" ]));
            i (Join (Reg "t1"));
            i (Join (Reg "t2"));
            i (Load ("v", Reg "arr", 0));
            i (Ret (Some (Reg "v")));
          ];
      ]
  in
  Ir.Program.make ~main:"main" [ w1; w2; main ]

(* ================================================================== *)
(* Bug injection. *)

type pattern =
  | RWR | WWR | RWW | WRW       (* Fig. 5 atomicity violations *)
  | WW | WR | RW                (* data races / order violations *)
  | Branch_bug                  (* sequential: input takes a bad branch *)
  | Value_bug                   (* sequential: a bad data value flows *)

let all_patterns = [ RWR; WWR; RWW; WRW; WW; WR; RW; Branch_bug; Value_bug ]

let pattern_name = function
  | RWR -> "RWR" | WWR -> "WWR" | RWW -> "RWW" | WRW -> "WRW"
  | WW -> "WW" | WR -> "WR" | RW -> "RW"
  | Branch_bug -> "BRANCH" | Value_bug -> "VALUE"

let pattern_of_name s =
  List.find_opt (fun p -> pattern_name p = s) all_patterns

(* Ground truth: which ranked predictors correctly describe the
   injected root cause, in source-line terms. *)
type accept =
  | A_race of string * int * int
  | A_atom of string * int * int * int
  | A_value of int * string
  | A_branch of int * bool

type truth = {
  t_kind_tag : string;   (* Exec.Failure.kind_tag of the planted failure *)
  t_fail_line : int;     (* source line where it manifests *)
  t_kernel_lines : int list; (* injected-kernel lines the sketch must cover *)
  t_accept : accept list;
}

type scenario = {
  s_pattern : pattern;
  s_pads : sstmt list array;  (* 4 regions; see [compile_scenario] *)
  s_preempt : float;
}

type case = {
  c_name : string;
  c_pattern : pattern;
  c_seed : int;              (* scenario seed; -1 for loaded corpus cases *)
  c_program : program;
  c_scenario : scenario option; (* present for generated (shrinkable) cases *)
  c_truth : truth;
  c_args_cycle : int list;   (* client c runs with arg cycle.(c mod len) *)
  c_preempt : float;
  c_faults : (Faults.Fault.rates * int) option; (* fleet faults (rates, seed) *)
}

let seed_of_client c = (c * 2654435761) land 0x3FFFFFFF

let workload_of case c =
  let cyc = Array.of_list case.c_args_cycle in
  Exec.Interp.workload
    ~args:[ Exec.Value.VInt cyc.(c mod Array.length cyc) ]
    (seed_of_client c)

(* ------------------------------------------------------------------ *)
(* Fixed source-line map of the injected kernels ("fuzz.c").

   10..23  scaffold: allocations, init stores, spawn/join
   101     first kernel access (thread 1 / sequential kernel head)
   102     interfering kernel access (thread 2) or bad-branch arm
   103     closing kernel access of an atomicity pair (thread 1)
   110     where the failure manifests
   111-114 auxiliary kernel statements (condition, relay cell)
   1000+   padding *)

let kernel_file = "fuzz.c"
let ki = B.file kernel_file
let r = B.r
let im = B.im

let l_init = 12
let l_k1 = 101
let l_k2 = 102
let l_k3 = 103
let l_fail = 110

(* The canonical workloads.  Concurrency kernels fail as a function of
   the schedule only; sequential kernels as a function of the input. *)
let args_cycle_of = function
  | Branch_bug -> [ 0; 5; 2; 7; 1; 6; 3; 4 ]  (* > 4 fails: 3 of 8 *)
  | Value_bug -> [ 3; 0; 5; 2; 7; 1 ]         (* 0 fails: 1 of 6 *)
  | _ -> [ 1; 2; 3 ]

let null_s = Exec.Value.to_string Exec.Value.VNull

let truth_of = function
  | RWR ->
    { t_kind_tag = "assert"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 103; 110; 111 ];
      t_accept =
        [ A_atom ("RWR", 101, 102, 103);
          A_race ("RW", 101, 102); A_race ("WR", 102, 103);
          (* the stale first read / interfered second read: Data_value
             wins the rank tie-break against Atomicity when both have
             perfect precision in the sampled fleet *)
          A_value (101, "0"); A_value (103, "1") ] }
  | WWR ->
    { t_kind_tag = "assert"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 103; 110; 111 ];
      t_accept =
        [ A_atom ("WWR", 101, 102, 103);
          A_race ("WW", 101, 102); A_race ("WR", 102, 103);
          A_value (103, "4"); A_value (101, "3") ] }
  | RWW ->
    { t_kind_tag = "assert"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 103; 110; 111; 112; 113 ];
      t_accept =
        [ A_atom ("RWW", 101, 102, 103);
          A_race ("RW", 101, 102); A_race ("WW", 102, 103);
          A_value (112, "1"); A_value (101, "0") ] }
  | WRW ->
    { t_kind_tag = "assert"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 103; 110; 112; 113; 114 ];
      t_accept =
        [ A_atom ("WRW", 101, 102, 103);
          A_race ("WR", 101, 102); A_race ("RW", 102, 103);
          A_value (112, "6"); A_value (113, "6") ] }
  | WW ->
    { t_kind_tag = "div-by-zero"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 110; 112 ];
      t_accept =
        [ A_race ("WW", 101, 102); A_race ("WR", 102, 112);
          A_value (112, "0"); A_value (102, "0") ] }
  | WR ->
    { t_kind_tag = "segfault"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 110 ];
      t_accept =
        [ A_race ("WR", 101, 102);
          A_value (102, null_s); A_value (101, null_s) ] }
  | RW ->
    { t_kind_tag = "div-by-zero"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 110; 111; 112 ];
      t_accept =
        [ A_race ("RW", 101, 102); A_race ("WR", l_init, 101);
          A_value (111, "0"); A_value (112, "0"); A_value (101, "0") ] }
  | Branch_bug ->
    { t_kind_tag = "segfault"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 102; 110; 111; 112; 113 ];
      t_accept =
        [ A_branch (101, true);
          A_value (102, null_s); A_value (112, null_s) ] }
  | Value_bug ->
    { t_kind_tag = "div-by-zero"; t_fail_line = l_fail;
      t_kernel_lines = [ 101; 110; 112 ];
      t_accept = [ A_value (101, "0"); A_value (112, "0") ] }

(* ------------------------------------------------------------------ *)
(* Scenario -> program.

   Pad regions: 0 = thread 1 before its kernel, 1 = inside thread 1's
   kernel window (between the accesses the interferer must hit), 2 =
   thread 2 before its kernel, 3 = main between the joins and the
   check.  Sequential patterns use regions 0 (before the kernel) and 1
   (between fault injection and manifestation). *)

let si line text kind = S_instr (ki line text kind)

let g_load ?(off = 0) line text dst = si line text (Load (dst, r "g", off))
let g_store ?(off = 0) line text v = si line text (Store (r "g", off, v))

let kernel_shape pads = function
  | RWR ->
    ( [ ki l_init "g->val = 0;" (Store (r "g", 0, im 0)) ],
      pads.(0)
      @ [ g_load l_k1 "int x1 = g->val;" "x1" ]
      @ pads.(1)
      @ [
          g_load l_k3 "int x2 = g->val;" "x2";
          si 111 "bool eq = (x1 == x2);" (Assign ("eq", B.( =% ) (r "x1") (r "x2")));
          si l_fail "assert(x1 == x2);" (Assert (r "eq", "atomic read pair differs"));
        ],
      pads.(2) @ [ g_store l_k2 "g->val = 1;" (im 1) ],
      [] )
  | WWR ->
    ( [ ki l_init "g->val = 0;" (Store (r "g", 0, im 0)) ],
      pads.(0)
      @ [ g_store l_k1 "g->val = 3;" (im 3) ]
      @ pads.(1)
      @ [
          g_load l_k3 "int x = g->val;" "x";
          si 111 "bool eq = (x == 3);" (Assign ("eq", B.( =% ) (r "x") (im 3)));
          si l_fail "assert(x == 3);" (Assert (r "eq", "read-back differs"));
        ],
      pads.(2) @ [ g_store l_k2 "g->val = 4;" (im 4) ],
      [] )
  | RWW ->
    ( [ ki l_init "g->val = 0;" (Store (r "g", 0, im 0)) ],
      pads.(0)
      @ [ g_load l_k1 "int x = g->val;" "x" ]
      @ pads.(1)
      @ [
          si 111 "int y = x + 1;" (Assign ("y", B.( +% ) (r "x") (im 1)));
          g_store l_k3 "g->val = y;" (r "y");
        ],
      pads.(2) @ [ g_store l_k2 "g->val = 5;" (im 5) ],
      [
        g_load 112 "int v = g->val;" "v";
        si 113 "bool ok = (v >= 5);" (Assign ("ok", B.( >=% ) (r "v") (im 5)));
        si l_fail "assert(v >= 5);" (Assert (r "ok", "lost update"));
      ] )
  | WRW ->
    ( [ ki l_init "g->val = 0;" (Store (r "g", 0, im 0)) ],
      pads.(0)
      @ [ g_store l_k1 "g->val = 6; /* intermediate */" (im 6) ]
      @ pads.(1)
      @ [ g_store l_k3 "g->val = 7; /* final */" (im 7) ],
      pads.(2)
      @ [
          g_load l_k2 "int x = g->val;" "x";
          si 112 "g->seen = x;" (Store (r "g", 1, r "x"));
        ],
      [
        si 113 "int v = g->seen;" (Load ("v", r "g", 1));
        si 114 "bool ok = (v != 6);" (Assign ("ok", B.( <>% ) (r "v") (im 6)));
        si l_fail "assert(v != 6);" (Assert (r "ok", "saw intermediate value"));
      ] )
  | WW ->
    ( [ ki l_init "g->val = 3;" (Store (r "g", 0, im 3)) ],
      pads.(0) @ [ g_store l_k1 "g->val = 2;" (im 2) ],
      pads.(2) @ [ g_store l_k2 "g->val = 0;" (im 0) ],
      [
        g_load 112 "int v = g->val;" "v";
        si l_fail "int q = 100 / v;" (Assign ("q", Bin (Div, im 100, r "v")));
      ] )
  | WR ->
    ( [
        ki 14 "char* p = malloc(1);" (Malloc ("p", 1));
        ki 15 "p[0] = 42;" (Store (r "p", 0, im 42));
        ki l_init "g->buf = p;" (Store (r "g", 0, r "p"));
      ],
      pads.(0) @ [ g_store l_k1 "g->buf = NULL;" Null ],
      pads.(2)
      @ [
          g_load l_k2 "char* x = g->buf;" "x";
          si l_fail "char c = x[0];" (Load ("v", r "x", 0));
        ],
      [] )
  | RW ->
    ( [ ki l_init "g->val = 0;" (Store (r "g", 0, im 0)) ],
      pads.(0)
      @ [
          g_load l_k1 "int x = g->val;" "x";
          si 111 "g->out = x;" (Store (r "g", 1, r "x"));
        ],
      pads.(2) @ [ g_store l_k2 "g->val = 9;" (im 9) ],
      [
        si 112 "int v = g->out;" (Load ("v", r "g", 1));
        si l_fail "int q = 100 / v;" (Assign ("q", Bin (Div, im 100, r "v")));
      ] )
  | (Branch_bug | Value_bug) as p ->
    ignore p;
    assert false (* sequential patterns are compiled separately *)

let is_concurrent = function Branch_bug | Value_bug -> false | _ -> true

let compile_scenario sc =
  (* The compile-time rng only feeds structural filler (padding branch
     conditions); seeding it constantly keeps [compile_scenario] a pure
     function of the scenario, which shrinking and replay rely on. *)
  let g = { rng = Exec.Rng.create 7; fresh = 100_000; line = 999 } in
  let blocks_of ?prelude stmts =
    List.map
      (fun (label, instrs) -> B.block label instrs)
      (compile g ~file:kernel_file ?prelude stmts)
  in
  let arr_alloc line = ki line "int arr[8];" (Malloc ("arr", 8)) in
  match sc.s_pattern with
  | Branch_bug ->
    let prelude =
      [
        ki 10 "cell* g = malloc(2);" (Malloc ("g", 2));
        arr_alloc 11;
        ki 14 "char* p = malloc(1);" (Malloc ("p", 1));
        ki 15 "p[0] = 7;" (Store (r "p", 0, im 7));
      ]
    in
    let body =
      sc.s_pads.(0)
      @ [
          si 111 "bool big = (n > 4);" (Assign ("c", B.( >% ) (r "a") (im 4)));
          S_if_at
            ( ki l_k1 "if (n > LIMIT) {" (Branch (r "c", "", "")),
              [ g_store l_k2 "g->cur = NULL; /* error path */" Null ],
              [ si 113 "g->cur = p;" (Store (r "g", 0, r "p")) ] );
        ]
      @ sc.s_pads.(1)
      @ [
          g_load 112 "char* x = g->cur;" "x";
          si l_fail "char c0 = x[0];" (Load ("v", r "x", 0));
        ]
    in
    Ir.Program.make ~main:"main"
      [ B.func "main" ~params:[ "a" ] (blocks_of ~prelude body) ]
  | Value_bug ->
    let prelude =
      [ ki 10 "cell* g = malloc(2);" (Malloc ("g", 2)); arr_alloc 11 ]
    in
    let body =
      sc.s_pads.(0)
      @ [ g_store l_k1 "g->val = n;" (r "a") ]
      @ sc.s_pads.(1)
      @ [
          g_load 112 "int v = g->val;" "v";
          si l_fail "int q = 100 / v;" (Assign ("q", Bin (Div, im 100, r "v")));
        ]
    in
    Ir.Program.make ~main:"main"
      [ B.func "main" ~params:[ "a" ] (blocks_of ~prelude body) ]
  | p ->
    let init, w1_body, w2_body, check = kernel_shape sc.s_pads p in
    let worker name body =
      B.func name ~params:[ "g"; "a" ]
        (blocks_of ~prelude:[ arr_alloc 30 ] body)
    in
    let main_body =
      [
        si 20 "t1 = spawn(worker1, g);" (Spawn ("t1", "worker1", [ r "g"; r "a" ]));
        si 21 "t2 = spawn(worker2, g);" (Spawn ("t2", "worker2", [ r "g"; r "a" ]));
        si 22 "join(t1);" (Join (r "t1"));
        si 23 "join(t2);" (Join (r "t2"));
      ]
      @ sc.s_pads.(3) @ check
    in
    let prelude =
      [ ki 10 "cell* g = malloc(2);" (Malloc ("g", 2)); arr_alloc 11 ] @ init
    in
    Ir.Program.make ~main:"main"
      [
        worker "worker1" w1_body;
        worker "worker2" w2_body;
        B.func "main" ~params:[ "a" ] (blocks_of ~prelude main_body);
      ]

(* ------------------------------------------------------------------ *)
(* Scenario generation and shrinking. *)

let scenario ?(pad_budget = 6) pattern seed =
  let g = { rng = Exec.Rng.create seed; fresh = 0; line = 999 } in
  let pad () =
    let budget = Exec.Rng.int g.rng (pad_budget + 1) in
    fst (random_stmts g [ "a" ] 2 budget)
  in
  let pads = [| pad (); pad (); pad (); pad () |] in
  let preempt = 0.2 +. (Exec.Rng.float g.rng *. 0.2) in
  { s_pattern = pattern; s_pads = pads; s_preempt = preempt }

let rec stmts_size stmts =
  List.fold_left
    (fun acc s ->
      acc
      + match s with
        | S_if (_, t, e) | S_if_at (_, t, e) ->
          1 + stmts_size t + stmts_size e
        | S_loop (_, b, body) -> 1 + b + stmts_size body
        | _ -> 1)
    0 stmts

let scenario_size sc = Array.fold_left (fun a p -> a + stmts_size p) 0 sc.s_pads

(* Every one-step reduction of the padding: drop a whole region, drop
   one top-level statement, flatten an if into its arms, or cut a loop
   bound to 1.  Candidates that break a register dependency simply
   change the verdict and are rejected by the shrinker's re-check. *)
let shrink_candidates sc =
  let out = ref [] in
  let emit i pads_i =
    let pads = Array.copy sc.s_pads in
    pads.(i) <- pads_i;
    out := { sc with s_pads = pads } :: !out
  in
  Array.iteri
    (fun i region ->
      if region <> [] then emit i [];
      List.iteri
        (fun j _ -> emit i (List.filteri (fun k _ -> k <> j) region))
        region;
      List.iteri
        (fun j s ->
          let replace repl =
            emit i
              (List.concat (List.mapi (fun k x -> if k = j then repl else [ x ]) region))
          in
          match s with
          | S_if (_, t, e) -> replace (t @ e)
          | S_loop (k, b, body) when b > 1 -> replace [ S_loop (k, 1, body) ]
          | _ -> ())
        region)
    sc.s_pads;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Cases. *)

let case_name pattern seed =
  Printf.sprintf "%s-%d" (String.lowercase_ascii (pattern_name pattern)) seed

let case_of_scenario ?name ?(seed = -1) sc =
  {
    c_name =
      (match name with Some n -> n | None -> case_name sc.s_pattern seed);
    c_pattern = sc.s_pattern;
    c_seed = seed;
    c_program = compile_scenario sc;
    c_scenario = Some sc;
    c_truth = truth_of sc.s_pattern;
    c_args_cycle = args_cycle_of sc.s_pattern;
    c_preempt = sc.s_preempt;
    c_faults = None;
  }

let generate ?pad_budget pattern seed =
  case_of_scenario ~seed (scenario ?pad_budget pattern seed)
