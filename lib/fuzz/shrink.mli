(** Greedy verdict-preserving minimization of injected-bug cases. *)

val instr_count : Gen.case -> int

type result = {
  shrunk : Gen.case;
  target : Check.verdict;  (** the verdict being preserved *)
  rounds : int;            (** accepted reductions *)
  checks : int;            (** candidate evaluations *)
  size_before : int;       (** instruction count before *)
  size_after : int;
}

(** [run case target] strips padding while {!Check.check} keeps
    returning exactly [target].  Terminates (each accepted reduction
    strictly shrinks the scenario); cases without a scenario are
    returned unchanged. *)
val run : ?pool:Parallel.Pool.t -> Gen.case -> Check.verdict -> result
