(* Greedy scenario shrinking.

   Whatever a case got wrong — wrong or missing root cause, engine
   divergence, pipeline crash — the shrinker strips padding one step at
   a time, keeping only reductions that reproduce the *identical*
   verdict (the payloads are normalized to source lines, so "identical"
   is meaningful across reductions).  Padding removal strictly
   decreases [Gen.scenario_size], so the loop terminates; the fixpoint
   is a kernel-sized reproducer. *)

let instr_count (case : Gen.case) = case.Gen.c_program.Ir.Types.n_instrs

type result = {
  shrunk : Gen.case;
  target : Check.verdict;   (* the verdict being preserved *)
  rounds : int;             (* accepted reductions *)
  checks : int;             (* candidate evaluations *)
  size_before : int;        (* instruction counts *)
  size_after : int;
}

(* Rebuild a candidate case, preserving the original's labelling: the
   truth may have been altered by the caller (the tests doctor accept
   sets to force failures) and must travel with the reproducer — as
   must the fault environment, or a fault-induced verdict could never
   reproduce on the candidate. *)
let case_of (orig : Gen.case) sc =
  {
    (Gen.case_of_scenario ~name:orig.Gen.c_name ~seed:orig.Gen.c_seed sc) with
    Gen.c_truth = orig.Gen.c_truth;
    c_args_cycle = orig.Gen.c_args_cycle;
    c_faults = orig.Gen.c_faults;
  }

(* [run case target]: greedily minimize [case] while [Check.check]
   keeps returning [target].  Returns the original case unchanged when
   it has no scenario (corpus-loaded cases are already shrunk). *)
let run ?pool (case : Gen.case) (target : Check.verdict) =
  match case.Gen.c_scenario with
  | None ->
    {
      shrunk = case;
      target;
      rounds = 0;
      checks = 0;
      size_before = instr_count case;
      size_after = instr_count case;
    }
  | Some sc0 ->
    let checks = ref 0 in
    let reproduces sc =
      incr checks;
      Check.verdict_equal (Check.check ?pool (case_of case sc)).Check.verdict
        target
    in
    let rec loop sc rounds =
      match List.find_opt reproduces (Gen.shrink_candidates sc) with
      | Some sc' -> loop sc' (rounds + 1)
      | None -> (sc, rounds)
    in
    let sc, rounds = loop sc0 0 in
    let shrunk = case_of case sc in
    {
      shrunk;
      target;
      rounds;
      checks = !checks;
      size_before = instr_count case;
      size_after = instr_count shrunk;
    }
