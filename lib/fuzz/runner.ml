(* The fuzz campaign driver: generate labelled cases round-robin over
   the pattern taxonomy, check each end-to-end, shrink whatever fails,
   and aggregate per-pattern root-cause accuracy.

   Determinism: all scenario seeds are pre-drawn from the campaign rng
   before any case runs, every case is a pure function of its seeds,
   and [Parallel.Pool.map] delivers results in submission order — so
   the report is bit-identical whatever [--jobs] is. *)

type case_report = {
  cr_name : string;
  cr_pattern : Gen.pattern;
  cr_seed : int;
  cr_verdict : Check.verdict;
  cr_top : string option;
  cr_iterations : int;
  cr_total_runs : int;
  cr_shrink : Shrink.result option; (* present for shrunk failures *)
  cr_fleet : Gist.Server.fleet_stats option; (* present when diagnose ran *)
}

type pattern_stats = {
  ps_pattern : Gen.pattern;
  ps_total : int;
  ps_correct : int;
}

let ps_accuracy ps =
  if ps.ps_total = 0 then 1.0
  else float_of_int ps.ps_correct /. float_of_int ps.ps_total

type report = {
  r_seed : int;
  r_count : int;
  r_cases : case_report list;
  r_stats : pattern_stats list; (* [Gen.all_patterns] order, non-empty only *)
  r_faults : (Faults.Fault.rates * int) option; (* campaign fault environment *)
}

let failures r =
  List.filter (fun cr -> cr.cr_verdict <> Check.Correct) r.r_cases

let overall_accuracy r =
  if r.r_cases = [] then 1.0
  else
    float_of_int (List.length r.r_cases - List.length (failures r))
    /. float_of_int (List.length r.r_cases)

(* The acceptance gate: the *worst* pattern must clear the bar, not
   just the average (an always-wrong pattern must not hide behind
   eight perfect ones). *)
let min_pattern_accuracy r =
  List.fold_left (fun acc ps -> min acc (ps_accuracy ps)) 1.0 r.r_stats

(* ------------------------------------------------------------------ *)

let stats_of cases =
  List.filter_map
    (fun p ->
      let of_p = List.filter (fun cr -> cr.cr_pattern = p) cases in
      if of_p = [] then None
      else
        Some
          {
            ps_pattern = p;
            ps_total = List.length of_p;
            ps_correct =
              List.length
                (List.filter (fun cr -> cr.cr_verdict = Check.Correct) of_p);
          })
    Gen.all_patterns

(* Not every (pattern, seed) is diagnosable: padding can make a
   schedule-dependent kernel fail too rarely (or too often) inside the
   probe window.  Each slot pre-draws [retries] candidate seeds and
   uses the first viable one; the last is kept regardless, so an
   unviable slot surfaces as a [No_failure] verdict instead of
   vanishing. *)
let case_for ~retries_seeds pattern =
  let rec pick = function
    | [] -> assert false
    | [ s ] -> Gen.generate pattern s
    | s :: tl ->
      let case = Gen.generate pattern s in
      if Check.viable (Check.probe case) then case else pick tl
  in
  pick retries_seeds

let run_case ~shrink ~faults ~early_exit i seeds =
  let n_pat = List.length Gen.all_patterns in
  let pattern = List.nth Gen.all_patterns (i mod n_pat) in
  let case = case_for ~retries_seeds:seeds pattern in
  (* Stamp the fault environment onto the case itself: [Check.check]
     reads it from there, and the shrinker then reproduces verdicts
     under the same faults automatically. *)
  let case =
    match faults with None -> case | Some _ -> { case with Gen.c_faults = faults }
  in
  let o = Check.check ~early_exit case in
  let cr_shrink =
    if
      shrink
      && o.Check.verdict <> Check.Correct
      && Option.is_some case.Gen.c_scenario
    then Some (Shrink.run case o.Check.verdict)
    else None
  in
  {
    cr_name = case.Gen.c_name;
    cr_pattern = case.Gen.c_pattern;
    cr_seed = case.Gen.c_seed;
    cr_verdict = o.Check.verdict;
    cr_top = o.Check.top;
    cr_iterations = o.Check.iterations;
    cr_total_runs = o.Check.total_runs;
    cr_shrink;
    cr_fleet = o.Check.fleet;
  }

let draw_slots ~retries ~seed ~count =
  let rng = Exec.Rng.create seed in
  let slots = Array.make (max count 0) [] in
  for i = 0 to count - 1 do
    let l = ref [] in
    for _ = 1 to max retries 1 do
      l := Exec.Rng.int rng 0x3FFFFFFF :: !l
    done;
    slots.(i) <- List.rev !l
  done;
  slots

(* The exact case list a campaign with the same (seed, count, retries)
   checks: exposed so differential harnesses (adaptive early-exit vs
   the exhaustive oracle) can compare modes on the campaign's cases. *)
let cases ?(retries = 5) ~seed ~count () =
  let slots = draw_slots ~retries ~seed ~count in
  let n_pat = List.length Gen.all_patterns in
  List.init (max count 0) (fun i ->
      case_for ~retries_seeds:slots.(i)
        (List.nth Gen.all_patterns (i mod n_pat)))

let run ?(jobs = 0) ?(shrink = true) ?(retries = 5) ?faults
    ?(early_exit = false) ~seed ~count () =
  let slots = draw_slots ~retries ~seed ~count in
  let cases =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Array.to_list
          (Parallel.Pool.map_array pool
             (fun i -> run_case ~shrink ~faults ~early_exit i slots.(i))
             (Array.init (max count 0) (fun i -> i))))
  in
  {
    r_seed = seed;
    r_count = count;
    r_cases = cases;
    r_stats = stats_of cases;
    r_faults = faults;
  }

(* Fleet-protocol totals across every case that reached diagnosis. *)
let fleet_totals r =
  let merge xs ys =
    List.fold_left
      (fun acc (k, v) ->
        let cur = Option.value ~default:0 (List.assoc_opt k acc) in
        (k, cur + v) :: List.remove_assoc k acc)
      xs ys
    |> List.sort compare
  in
  List.fold_left
    (fun (acc : Gist.Server.fleet_stats) cr ->
      match cr.cr_fleet with
      | None -> acc
      | Some (f : Gist.Server.fleet_stats) ->
        {
          Gist.Server.f_dispatched = acc.f_dispatched + f.f_dispatched;
          f_delivered = acc.f_delivered + f.f_delivered;
          f_valid = acc.f_valid + f.f_valid;
          f_lost = acc.f_lost + f.f_lost;
          f_rejected = acc.f_rejected + f.f_rejected;
          f_retried = acc.f_retried + f.f_retried;
          f_quarantined = acc.f_quarantined + f.f_quarantined;
          f_degraded_iters = acc.f_degraded_iters + f.f_degraded_iters;
          f_by_kind = merge acc.f_by_kind f.f_by_kind;
          f_by_reason = merge acc.f_by_reason f.f_by_reason;
        })
    {
      Gist.Server.f_dispatched = 0;
      f_delivered = 0;
      f_valid = 0;
      f_lost = 0;
      f_rejected = 0;
      f_retried = 0;
      f_quarantined = 0;
      f_degraded_iters = 0;
      f_by_kind = [];
      f_by_reason = [];
    }
    r.r_cases

(* ------------------------------------------------------------------ *)
(* Reporting. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"seed\": %d,\n" r.r_seed;
  p "  \"count\": %d,\n" r.r_count;
  p "  \"accuracy\": %.4f,\n" (overall_accuracy r);
  p "  \"min_pattern_accuracy\": %.4f,\n" (min_pattern_accuracy r);
  p "  \"total_runs\": %d,\n"
    (List.fold_left (fun a cr -> a + cr.cr_total_runs) 0 r.r_cases);
  (match r.r_faults with
   | None -> ()
   | Some (rates, fseed) ->
     let f = fleet_totals r in
     let assoc l =
       String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) l)
     in
     p "  \"faults\": {\n";
     p "    \"aggregate_rate\": %.4f,\n" (Faults.Fault.aggregate rates);
     p "    \"seed\": %d,\n" fseed;
     p "    \"dispatched\": %d, \"delivered\": %d, \"valid\": %d,\n"
       f.Gist.Server.f_dispatched f.Gist.Server.f_delivered
       f.Gist.Server.f_valid;
     p "    \"lost\": %d, \"rejected\": %d, \"retried\": %d, \
        \"quarantined\": %d,\n"
       f.Gist.Server.f_lost f.Gist.Server.f_rejected f.Gist.Server.f_retried
       f.Gist.Server.f_quarantined;
     p "    \"degraded_iterations\": %d,\n" f.Gist.Server.f_degraded_iters;
     p "    \"by_kind\": {%s},\n" (assoc f.Gist.Server.f_by_kind);
     p "    \"by_reason\": {%s}\n" (assoc f.Gist.Server.f_by_reason);
     p "  },\n");
  p "  \"patterns\": [\n";
  List.iteri
    (fun i ps ->
      p "    {\"pattern\": \"%s\", \"total\": %d, \"correct\": %d, \
         \"accuracy\": %.4f}%s\n"
        (Gen.pattern_name ps.ps_pattern)
        ps.ps_total ps.ps_correct (ps_accuracy ps)
        (if i = List.length r.r_stats - 1 then "" else ","))
    r.r_stats;
  p "  ],\n";
  let fails = failures r in
  p "  \"failures\": [\n";
  List.iteri
    (fun i cr ->
      let shrunk =
        match cr.cr_shrink with
        | Some s ->
          Printf.sprintf ", \"shrunk_instrs\": %d, \"shrink_rounds\": %d"
            s.Shrink.size_after s.Shrink.rounds
        | None -> ""
      in
      p "    {\"name\": \"%s\", \"pattern\": \"%s\", \"seed\": %d, \
         \"verdict\": \"%s\", \"detail\": \"%s\"%s}%s\n"
        (json_escape cr.cr_name)
        (Gen.pattern_name cr.cr_pattern)
        cr.cr_seed
        (Check.verdict_name cr.cr_verdict)
        (json_escape (Check.verdict_to_string cr.cr_verdict))
        shrunk
        (if i = List.length fails - 1 then "" else ","))
    fails;
  p "  ]\n";
  p "}\n";
  Buffer.contents buf

let pp ppf r =
  let fails = failures r in
  Fmt.pf ppf "fuzz seed=%d count=%d: accuracy %.3f (%d/%d correct)@."
    r.r_seed r.r_count (overall_accuracy r)
    (List.length r.r_cases - List.length fails)
    (List.length r.r_cases);
  (match r.r_faults with
   | None -> ()
   | Some (rates, fseed) ->
     let f = fleet_totals r in
     Fmt.pf ppf
       "  faults: aggregate %.1f%% (seed %d) -- %d dispatched, %d lost, %d \
        rejected, %d retried, %d quarantined, %d degraded iteration(s)@."
       (100.0 *. Faults.Fault.aggregate rates)
       fseed f.Gist.Server.f_dispatched f.Gist.Server.f_lost
       f.Gist.Server.f_rejected f.Gist.Server.f_retried
       f.Gist.Server.f_quarantined f.Gist.Server.f_degraded_iters;
     if f.Gist.Server.f_by_reason <> [] then
       Fmt.pf ppf "  rejections: %a@."
         Fmt.(
           list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
         f.Gist.Server.f_by_reason);
  List.iter
    (fun ps ->
      Fmt.pf ppf "  %-6s %3d/%-3d %.3f@."
        (Gen.pattern_name ps.ps_pattern)
        ps.ps_correct ps.ps_total (ps_accuracy ps))
    r.r_stats;
  if fails = [] then Fmt.pf ppf "  no failures@."
  else
    List.iter
      (fun cr ->
        Fmt.pf ppf "  FAIL %s (seed %d): %s%s@." cr.cr_name cr.cr_seed
          (Check.verdict_to_string cr.cr_verdict)
          (match cr.cr_shrink with
           | Some s ->
             Printf.sprintf " [shrunk %d -> %d instrs in %d rounds]"
               s.Shrink.size_before s.Shrink.size_after s.Shrink.rounds
           | None -> ""))
      fails
