(** Seeded program generation, with and without injected bugs.

    The plain generators ({!random}, {!random_threaded}) produce
    well-formed programs that cannot fault — the workhorses of the
    property and differential tests (promoted here from the old
    test-only [Tsupport.Gen_prog]).

    The bug-injection generator ({!generate}) wraps one of the paper's
    root-cause patterns in random harmless padding and records the
    ground truth, so the whole diagnosis pipeline can be scored against
    programs whose root cause is known by construction. *)

open Ir.Types

(** {1 Plain generation} *)

(** Statement-level AST shared by padding and injected kernels. *)
type sstmt =
  | S_assign of string * expr
  | S_store of int * operand        (** arr[k] <- v *)
  | S_load of string * int          (** fresh reg <- arr[k] *)
  | S_if of string * sstmt list * sstmt list
  | S_loop of string * int * sstmt list
  | S_instr of instr                (** pre-located kernel instruction *)
  | S_if_at of instr * sstmt list * sstmt list
      (** kernel branch; labels patched at compile time *)

(** Sequential program over a private 8-cell array; cannot fault. *)
val random : ?budget:int -> ?depth:int -> int -> program

(** Two workers over a shared array: racy by construction, but no
    instruction can fault. *)
val random_threaded : ?budget:int -> ?depth:int -> int -> program

(** {1 Bug injection} *)

(** The paper's root-cause taxonomy: Fig. 5 atomicity violations,
    data races / order violations, and the sequential bug shapes. *)
type pattern =
  | RWR | WWR | RWW | WRW
  | WW | WR | RW
  | Branch_bug
  | Value_bug

val all_patterns : pattern list
val pattern_name : pattern -> string
val pattern_of_name : string -> pattern option

(** Which predictors correctly describe the injected root cause, in
    source-line terms (lines survive iid renumbering; iids do not). *)
type accept =
  | A_race of string * int * int
  | A_atom of string * int * int * int
  | A_value of int * string
  | A_branch of int * bool

type truth = {
  t_kind_tag : string;       (** {!Exec.Failure.kind_tag} of the failure *)
  t_fail_line : int;         (** source line where it manifests *)
  t_kernel_lines : int list; (** injected-kernel lines *)
  t_accept : accept list;
}

(** An injected kernel plus its random padding; compiling the same
    scenario always yields the same program. *)
type scenario = {
  s_pattern : pattern;
  s_pads : sstmt list array;  (** 4 padding regions *)
  s_preempt : float;
}

type case = {
  c_name : string;
  c_pattern : pattern;
  c_seed : int;                 (** -1 for corpus-loaded cases *)
  c_program : program;
  c_scenario : scenario option; (** present iff the case is shrinkable *)
  c_truth : truth;
  c_args_cycle : int list;
  c_preempt : float;
  c_faults : (Faults.Fault.rates * int) option;
      (** fleet faults (rates, injection seed) the case is checked
          under; [None] = reliable fleet *)
}

val is_concurrent : pattern -> bool
val truth_of : pattern -> truth
val args_cycle_of : pattern -> int list

(** The deterministic per-client workload: client [c] gets argument
    [cycle.(c mod length)] and a seed derived from [c]. *)
val seed_of_client : int -> int
val workload_of : case -> int -> Exec.Interp.workload

val scenario : ?pad_budget:int -> pattern -> int -> scenario
val compile_scenario : scenario -> program
val case_of_scenario : ?name:string -> ?seed:int -> scenario -> case

(** [generate pattern seed]: a fresh labelled bug. *)
val generate : ?pad_budget:int -> pattern -> int -> case

(** {1 Shrinking support} *)

val scenario_size : scenario -> int

(** Every one-step reduction of the scenario's padding (drop a region,
    drop a statement, flatten an if, cut a loop bound). *)
val shrink_candidates : scenario -> scenario list
