(** The fuzz campaign driver: generate, check, shrink, aggregate.
    Deterministic for a given (seed, count) whatever the job count. *)

type case_report = {
  cr_name : string;
  cr_pattern : Gen.pattern;
  cr_seed : int;
  cr_verdict : Check.verdict;
  cr_top : string option;
  cr_iterations : int;
  cr_total_runs : int;
  cr_shrink : Shrink.result option; (** present for shrunk failures *)
  cr_fleet : Gist.Server.fleet_stats option;
      (** fleet-protocol health; present when diagnose ran *)
}

type pattern_stats = {
  ps_pattern : Gen.pattern;
  ps_total : int;
  ps_correct : int;
}

val ps_accuracy : pattern_stats -> float

type report = {
  r_seed : int;
  r_count : int;
  r_cases : case_report list;
  r_stats : pattern_stats list;
      (** per pattern actually generated, in {!Gen.all_patterns} order *)
  r_faults : (Faults.Fault.rates * int) option;
      (** the campaign's fault environment, if any *)
}

val failures : report -> case_report list
val overall_accuracy : report -> float

(** Worst per-pattern accuracy — the acceptance gate. *)
val min_pattern_accuracy : report -> float

(** [run ~seed ~count ()] fuzzes [count] cases round-robin over the
    taxonomy.  [jobs] sizes the case-level pool; [shrink] (default on)
    minimizes every failing case; [retries] candidate seeds are
    pre-drawn per slot and the first diagnosable one is used; [faults]
    (rates, fault seed) checks every case under injected fleet faults
    — the shrinker then reproduces verdicts under the same faults;
    [early_exit] (default false) diagnoses every case with the
    sequential stopping rule on. *)
val run :
  ?jobs:int -> ?shrink:bool -> ?retries:int ->
  ?faults:Faults.Fault.rates * int -> ?early_exit:bool ->
  seed:int -> count:int ->
  unit -> report

(** The exact case list a campaign with the same (seed, count,
    retries) checks, in slot order — for differential harnesses that
    compare diagnosis modes on the campaign's cases. *)
val cases : ?retries:int -> seed:int -> count:int -> unit -> Gen.case list

(** Fleet-protocol totals across every case that reached diagnosis. *)
val fleet_totals : report -> Gist.Server.fleet_stats

val to_json : report -> string
val pp : Format.formatter -> report -> unit
