(* The seed-corpus format: a shrunk case saved as an ordinary [.gir]
   file whose leading [#] comments carry the ground truth.  Comments
   are ignored by [Ir.Text.parse], so a corpus file is also a plain
   program for every other tool; iids are renumbered on reload, which
   is why the truth is expressed in source lines. *)

let accept_to_string = function
  | Gen.A_race (pat, a, b) -> Printf.sprintf "race:%s@%d->%d" pat a b
  | Gen.A_atom (pat, a, b, c) -> Printf.sprintf "atom:%s@%d,%d,%d" pat a b c
  | Gen.A_value (l, v) -> Printf.sprintf "value@%d=%s" l v
  | Gen.A_branch (l, t) ->
    Printf.sprintf "branch@%d=%s" l (if t then "taken" else "not-taken")

let split_first c s =
  match String.index_opt s c with
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let strip_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let accept_of_string s =
  let bad () = Error (Printf.sprintf "bad accept %S" s) in
  let int_of x = int_of_string_opt (String.trim x) in
  match strip_prefix ~prefix:"race:" s with
  | Some rest -> (
    match split_first '@' rest with
    | Some (pat, nums) -> (
      match String.split_on_char '-' nums with
      | [ a; gt_b ] when String.length gt_b > 0 && gt_b.[0] = '>' -> (
        let b = String.sub gt_b 1 (String.length gt_b - 1) in
        match (int_of a, int_of b) with
        | Some a, Some b -> Ok (Gen.A_race (pat, a, b))
        | _ -> bad ())
      | _ -> bad ())
    | None -> bad ())
  | None -> (
    match strip_prefix ~prefix:"atom:" s with
    | Some rest -> (
      match split_first '@' rest with
      | Some (pat, nums) -> (
        match List.map int_of (String.split_on_char ',' nums) with
        | [ Some a; Some b; Some c ] -> Ok (Gen.A_atom (pat, a, b, c))
        | _ -> bad ())
      | None -> bad ())
    | None -> (
      match strip_prefix ~prefix:"value@" s with
      | Some rest -> (
        match split_first '=' rest with
        | Some (l, v) -> (
          match int_of l with
          | Some l -> Ok (Gen.A_value (l, v))
          | None -> bad ())
        | None -> bad ())
      | None -> (
        match strip_prefix ~prefix:"branch@" s with
        | Some rest -> (
          match split_first '=' rest with
          | Some (l, t) -> (
            match (int_of l, t) with
            | Some l, "taken" -> Ok (Gen.A_branch (l, true))
            | Some l, "not-taken" -> Ok (Gen.A_branch (l, false))
            | _ -> bad ())
          | None -> bad ())
        | None -> bad ())))

(* ------------------------------------------------------------------ *)

let to_string (case : Gen.case) =
  let t = case.Gen.c_truth in
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "# gist fuzz corpus case (shrunk reproducer; ground truth below)\n";
  p "# pattern: %s\n" (Gen.pattern_name case.c_pattern);
  p "# kind: %s\n" t.t_kind_tag;
  p "# fail-line: %d\n" t.t_fail_line;
  p "# kernel-lines: %s\n"
    (String.concat "," (List.map string_of_int t.t_kernel_lines));
  p "# accept: %s\n" (String.concat "; " (List.map accept_to_string t.t_accept));
  p "# args: %s\n"
    (String.concat "," (List.map string_of_int case.c_args_cycle));
  p "# preempt: %.6f\n" case.c_preempt;
  (match case.c_faults with
   | None -> ()
   | Some (rates, fseed) ->
     p "# fault-rates: %s\n"
       (String.concat ","
          (List.filter_map
             (fun k ->
               let r = Faults.Fault.rate_of rates k in
               if r = 0.0 then None
               else Some (Printf.sprintf "%s=%.6f" (Faults.Fault.kind_name k) r))
             Faults.Fault.all_kinds));
     p "# fault-seed: %d\n" fseed);
  p "\n";
  Buffer.add_string buf (Ir.Text.emit case.c_program);
  Buffer.contents buf

let save path case =
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc

(* ------------------------------------------------------------------ *)

let headers_of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match strip_prefix ~prefix:"# " (String.trim line) with
         | Some rest -> (
           match split_first ':' rest with
           | Some (k, v) -> Some (String.trim k, String.trim v)
           | None -> None)
         | None -> None)

let ( let* ) = Result.bind

let require headers key =
  match List.assoc_opt key headers with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing '# %s:' header" key)

let int_list_of s =
  let parts =
    List.filter (fun x -> x <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: tl -> (
      match int_of_string_opt x with
      | Some n -> go (n :: acc) tl
      | None -> Error (Printf.sprintf "bad integer %S" x))
  in
  go [] parts

let of_string ~name text =
  let headers = headers_of_string text in
  let* pattern_s = require headers "pattern" in
  let* pattern =
    match Gen.pattern_of_name pattern_s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown pattern %S" pattern_s)
  in
  let* kind = require headers "kind" in
  let* fail_line_s = require headers "fail-line" in
  let* fail_line =
    match int_of_string_opt fail_line_s with
    | Some n -> Ok n
    | None -> Error "bad fail-line"
  in
  let* kernel_s = require headers "kernel-lines" in
  let* kernel_lines = int_list_of kernel_s in
  let* accept_s = require headers "accept" in
  let* accepts =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: tl -> (
        match accept_of_string (String.trim x) with
        | Ok a -> go (a :: acc) tl
        | Error e -> Error e)
    in
    go []
      (List.filter (fun x -> String.trim x <> "")
         (String.split_on_char ';' accept_s))
  in
  let* args_s = require headers "args" in
  let* args = int_list_of args_s in
  let* () = if args = [] then Error "empty args cycle" else Ok () in
  let* preempt_s = require headers "preempt" in
  let* preempt =
    match float_of_string_opt preempt_s with
    | Some f -> Ok f
    | None -> Error "bad preempt"
  in
  (* Optional fault environment: a fault-induced reproducer is only a
     reproducer under the same rates and injection seed. *)
  let* faults =
    match List.assoc_opt "fault-rates" headers with
    | None -> Ok None
    | Some rates_s ->
      let* rates =
        let rec go acc = function
          | [] -> Ok acc
          | entry :: tl -> (
            match split_first '=' entry with
            | Some (k, v) -> (
              match
                ( Faults.Fault.kind_of_name (String.trim k),
                  float_of_string_opt (String.trim v) )
              with
              | Some kind, Some r when r >= 0.0 && r <= 1.0 ->
                go (Faults.Fault.with_rate acc kind r) tl
              | _ -> Error (Printf.sprintf "bad fault rate %S" entry))
            | None -> Error (Printf.sprintf "bad fault rate %S" entry))
        in
        go Faults.Fault.zero
          (List.filter (fun x -> x <> "")
             (List.map String.trim (String.split_on_char ',' rates_s)))
      in
      let* fseed =
        match List.assoc_opt "fault-seed" headers with
        | None -> Error "missing '# fault-seed:' header (fault-rates present)"
        | Some s -> (
          match int_of_string_opt s with
          | Some n -> Ok n
          | None -> Error "bad fault-seed")
      in
      Ok (Some (rates, fseed))
  in
  let* program = Ir.Text.parse_result text in
  Ok
    {
      Gen.c_name = name;
      c_pattern = pattern;
      c_seed = -1;
      c_program = program;
      c_scenario = None;
      c_truth =
        {
          Gen.t_kind_tag = kind;
          t_fail_line = fail_line;
          t_kernel_lines = kernel_lines;
          t_accept = accepts;
        };
      c_args_cycle = args;
      c_preempt = preempt;
      c_faults = faults;
    }

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | text -> (
    let name = Filename.remove_extension (Filename.basename path) in
    match of_string ~name text with
    | Ok case -> Ok case
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* All [.gir] files of a directory, in filename order. *)
let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | files ->
    let files =
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".gir")
      |> List.sort compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: tl -> (
        match load (Filename.concat dir f) with
        | Ok c -> go (c :: acc) tl
        | Error e -> Error e)
    in
    go [] files
