(** The seed-corpus format: a shrunk case as an ordinary [.gir] file
    whose leading [#] comments carry the ground truth (pattern, failure
    kind and line, kernel lines, accept set, args cycle, preempt, and
    — for fault-induced reproducers — the fault rates and injection
    seed).  Comments are ignored by {!Ir.Text.parse}, so every corpus
    file is also a plain program; the truth is line-based because
    reloading renumbers iids. *)

val accept_to_string : Gen.accept -> string
val accept_of_string : string -> (Gen.accept, string) result

val to_string : Gen.case -> string
val save : string -> Gen.case -> unit

(** Loaded cases have no scenario (they are already shrunk) and seed
    [-1]; the name is the file's basename. *)
val of_string : name:string -> string -> (Gen.case, string) result

val load : string -> (Gen.case, string) result

(** All [.gir] files of a directory, in filename order; fails on the
    first unparsable file. *)
val load_dir : string -> (Gen.case list, string) result
