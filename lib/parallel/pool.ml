(* A fixed-size domain work pool (OCaml 5, no external deps).

   Design constraints, in order:

   1. *Determinism.*  Results are delivered in submission order, never
      in completion order, so callers that fold effects over results
      (the AsT quota accounting in [Gist.Server.diagnose]) observe a
      sequence bit-identical to a sequential run.
   2. *No deadlock under nesting.*  A caller waiting for its tasks
      *helps*: it drains the shared queue while its own work is
      outstanding.  A worker that itself submits a nested [map]
      therefore makes progress even when every other worker is busy.
   3. *Graceful degradation.*  A pool with zero workers runs everything
      inline on the caller, byte-for-byte the sequential code path --
      that is the default on single-core machines. *)

type t = {
  jobs : int; (* worker domains, >= 0 *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t; (* a task was queued, or the pool is closing *)
  finished : Condition.t; (* some task completed *)
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

(* The worker count [create ~jobs] actually spawns.  The caller helps
   drain every map, so a lone worker only contends with it on the queue
   mutex, and any worker at all on a single-core host just adds domain
   scheduling churn (PR1 measured parallel diagnosis at 0.37x sequential
   on 1 core).  Both cases collapse to zero workers -- the in-caller
   sequential path -- and worker counts above the core count are clamped
   down to it. *)
let effective ~jobs =
  let requested = max 0 jobs in
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 || requested <= 1 then 0 else min requested cores

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then (* closing *) Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker t
  end

let create ~jobs =
  let jobs = effective ~jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      finished = Condition.create ();
      closing = false;
      domains = [];
    }
  in
  t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let sequential = create ~jobs:0

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [f xs.(i)] for every index, blocking until all are done.  The
   caller participates: it executes queued tasks (its own or, under
   nesting, anyone's) instead of sleeping, and only waits on
   [finished] when the queue is momentarily empty. *)
let map_array t f xs =
  let n = Array.length xs in
  if t.jobs = 0 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    (* Chunked submission: about four chunks per executor (workers plus
       the helping caller) amortises queueing and wake-ups over many
       elements while leaving enough chunks to balance unequal task
       costs.  Slot writes inside a chunk need no lock -- each index
       belongs to exactly one chunk, and the completion decrement under
       [mutex] publishes them to the drainer. *)
    let chunks = min n ((t.jobs + 1) * 4) in
    let chunk_size = (n + chunks - 1) / chunks in
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    let remaining = ref n_chunks in
    Mutex.lock t.mutex;
    for ci = 0 to n_chunks - 1 do
      let lo = ci * chunk_size in
      let hi = min n (lo + chunk_size) - 1 in
      Queue.add
        (fun () ->
          for i = lo to hi do
            results.(i) <-
              Some (match f xs.(i) with v -> Ok v | exception e -> Error e)
          done;
          Mutex.lock t.mutex;
          decr remaining;
          Condition.broadcast t.finished;
          Mutex.unlock t.mutex)
        t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    let rec drain () =
      Mutex.lock t.mutex;
      if !remaining = 0 then Mutex.unlock t.mutex
      else if not (Queue.is_empty t.queue) then begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        drain ()
      end
      else begin
        Condition.wait t.finished t.mutex;
        Mutex.unlock t.mutex;
        drain ()
      end
    in
    drain ();
    (* All writes to [results] synchronised through [mutex]; the first
       exception (in submission order) is re-raised deterministically. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map t f l = Array.to_list (map_array t f (Array.of_list l))

(* Per-worker mutable scratch (decode arenas, reusable buffers):
   domain-local storage, so a task never contends for or observes
   another worker's state.  [worker_local init] returns a getter; each
   domain that calls it (workers and the helping caller alike) gets
   its own lazily-created instance.  State persists across tasks on
   the same domain -- that is the point (buffers stay grown) -- so
   anything reachable from it must not leak task results: use it for
   scratch whose contents are dead once the task returns. *)
let worker_local init =
  let key = Domain.DLS.new_key init in
  fun () -> Domain.DLS.get key

(* Speculative ordered streaming.  [next i] builds the i-th task (or
   [None] past the end); batches run on the pool, then [consume i r]
   folds results *in submission order* until it returns [false].
   Tasks past the stop point may have run speculatively -- their
   results are discarded unconsumed -- so [consume] must carry all the
   side effects and tasks must be pure.  Returns the number of results
   consumed.  With zero workers the batch size is 1: generate, run,
   consume, re-check -- exactly the sequential loop. *)
let map_until t ?batch ~next ~consume () =
  let batch =
    match batch with
    | Some b -> max 1 b
    | None -> if t.jobs = 0 then 1 else t.jobs * 4
  in
  let consumed = ref 0 in
  let idx = ref 0 in
  let continue_ = ref true in
  let exhausted = ref false in
  while !continue_ && not !exhausted do
    let thunks = ref [] in
    while List.length !thunks < batch && not !exhausted do
      match next !idx with
      | Some th ->
        thunks := th :: !thunks;
        incr idx
      | None -> exhausted := true
    done;
    let arr = Array.of_list (List.rev !thunks) in
    if Array.length arr = 0 then exhausted := true
    else begin
      let results = map_array t (fun th -> th ()) arr in
      Array.iter
        (fun r ->
          if !continue_ then begin
            incr consumed;
            if not (consume (!consumed - 1) r) then continue_ := false
          end)
        results
    end
  done;
  !consumed
