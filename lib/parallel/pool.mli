(** A fixed-size domain work pool with deterministic, submission-ordered
    result delivery (OCaml 5 domains, no external dependencies).

    The pool exists to parallelise the embarrassingly parallel loops of
    the Gist pipeline (client fleet simulation, per-bug experiment
    sweeps) without changing any observable result: [map] returns
    results in submission order, and [map_until] consumes them in
    submission order, so effects folded over the results are
    bit-identical to a sequential run. *)

type t

(** [create ~jobs] spawns [effective ~jobs] worker domains.  The
    caller also executes tasks while waiting, so total parallelism is
    [jobs + 1]; nested [map]/[map_until] from inside a task cannot
    deadlock (the submitter helps drain the queue). *)
val create : jobs:int -> t

(** The worker count {!create} actually spawns for a requested [jobs]:
    [0] when [jobs <= 1] (a lone worker only contends with the helping
    caller) or on a single-core host (any worker is pure scheduling
    overhead there), otherwise [jobs] clamped to the core count.  Zero
    workers means every operation runs inline on the caller --
    byte-for-byte the sequential code path, so oversubscribed settings
    degrade to sequential speed instead of below it. *)
val effective : jobs:int -> int

(** A shared zero-worker pool: every operation runs inline on the
    caller, byte-for-byte the sequential code path. *)
val sequential : t

(** Number of worker domains. *)
val jobs : t -> int

(** [map_array t f xs] applies [f] to every element on the pool and
    returns the results in input order.  Elements are submitted in
    chunks (about four per executor) so queue overhead amortises; every
    element still runs, and if any application raised, the first
    exception in input order is re-raised after all tasks finished. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** List version of {!map_array}. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_until t ~next ~consume ()] streams an ordered task sequence
    through the pool: [next i] builds the [i]-th task ([None] ends the
    stream), batches execute in parallel, and [consume i result] folds
    the results in submission order until it returns [false].  Tasks
    beyond the stop point may have executed speculatively and are
    discarded unconsumed, so tasks must be pure: all side effects
    belong in [consume].  Returns how many results were consumed.
    With zero workers the batch size is 1, which is exactly the
    sequential check-run-consume loop. *)
val map_until :
  t ->
  ?batch:int ->
  next:(int -> (unit -> 'a) option) ->
  consume:(int -> 'a -> bool) ->
  unit ->
  int

(** [worker_local init] is per-domain mutable scratch (decode arenas,
    reusable buffers): the returned getter gives each domain — pool
    workers and the helping caller alike — its own lazily-created
    instance, so tasks never contend for or observe another worker's
    state.  The instance persists across tasks on the same domain
    (buffers stay grown); use it only for scratch whose contents are
    dead once a task returns. *)
val worker_local : (unit -> 'a) -> unit -> 'a

(** Stop the workers and join their domains.  Queued-but-unstarted
    tasks of in-flight maps are still executed by the submitter (it
    helps drain), so no [map] is left incomplete. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
