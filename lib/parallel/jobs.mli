(** The fleet-wide parallelism knob shared by the CLI, the experiment
    harness and the benchmarks. *)

(** [Domain.recommended_domain_count ()]: what the hardware offers. *)
val available : unit -> int

(** Worker-domain count to use by default: an explicit {!set_default}
    wins, then the [GIST_JOBS] environment variable, then
    [available () - 1] (the submitting domain works too).  [0] means
    fully sequential. *)
val default : unit -> int

(** Override the default (the CLI's [--jobs]).  Clamped to [>= 0];
    retires a previously created {!global} pool of a different size. *)
val set_default : int -> unit

(** The shared pool, created lazily with [default ()] workers. *)
val global : unit -> Pool.t
