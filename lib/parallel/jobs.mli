(** The fleet-wide parallelism knob shared by the CLI, the experiment
    harness and the benchmarks. *)

(** [Domain.recommended_domain_count ()]: what the hardware offers. *)
val available : unit -> int

(** Worker-domain count to use: an explicit {!set_default} wins, then
    the [GIST_JOBS] environment variable, then [available () - 1] (the
    submitting domain works too).  [0] means fully sequential.
    Explicit requests are clamped to [available ()] -- worker domains
    beyond the core count add scheduler churn, not parallelism (and
    {!Pool.effective} further collapses single-core hosts to zero
    workers). *)
val effective : unit -> int

(** Alias for {!effective} (the historical name). *)
val default : unit -> int

(** Override the default (the CLI's [--jobs]).  Clamped to
    [0 <= n <= available ()]; retires a previously created {!global}
    pool of a different effective size. *)
val set_default : int -> unit

(** The shared pool, created lazily with [effective ()] workers. *)
val global : unit -> Pool.t
