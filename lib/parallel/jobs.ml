(* Fleet-wide parallelism knob.

   Priority: an explicit [set_default] (the CLI's [--jobs]), then the
   GIST_JOBS environment variable, then [Domain.recommended_domain_count
   () - 1] (the caller participates in every map, so [jobs] worker
   domains saturate [jobs + 1] cores).  Requested counts are clamped to
   [available ()]: worker domains beyond the core count cannot add
   parallelism, only scheduler churn (BENCH_PR1 ran jobs=2 on a 1-core
   host and measured parallel diagnosis at 0.37x sequential).  [global
   ()] hands out one shared pool, created lazily with whatever the
   default resolves to at first use. *)

let forced : int option ref = ref None

let available () = Domain.recommended_domain_count ()

let clamp n = min (max 0 n) (available ())

let of_env () =
  match Sys.getenv_opt "GIST_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some (clamp n)
    | None -> None)
  | None -> None

let effective () =
  match !forced with
  | Some n -> n
  | None -> (
    match of_env () with
    | Some n -> n
    | None -> max 0 (available () - 1))

let default = effective

let global_pool : Pool.t option ref = ref None
let lock = Mutex.create ()

let set_default n =
  let n = clamp n in
  Mutex.lock lock;
  forced := Some n;
  (* A pool created under an older default is stale: retire it. *)
  (match !global_pool with
   | Some p when Pool.jobs p <> Pool.effective ~jobs:n ->
     global_pool := None;
     Mutex.unlock lock;
     Pool.shutdown p
   | _ -> Mutex.unlock lock)

let global () =
  Mutex.lock lock;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = Pool.create ~jobs:(effective ()) in
      global_pool := Some p;
      p
  in
  Mutex.unlock lock;
  p
