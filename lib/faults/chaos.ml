type kind = Kill | Ckpt_corrupt | Torn_write | Poison

let all_kinds = [ Kill; Ckpt_corrupt; Torn_write; Poison ]

let kind_name = function
  | Kill -> "kill"
  | Ckpt_corrupt -> "ckpt-corrupt"
  | Torn_write -> "torn-write"
  | Poison -> "poison"

type rates = {
  kill : float;
  ckpt_corrupt : float;
  torn_write : float;
  poison : float;
}

let zero = { kill = 0.0; ckpt_corrupt = 0.0; torn_write = 0.0; poison = 0.0 }

let is_zero r =
  r.kill = 0.0 && r.ckpt_corrupt = 0.0 && r.torn_write = 0.0 && r.poison = 0.0

let spread p =
  {
    kill = p;
    ckpt_corrupt = p /. 2.0;
    torn_write = p /. 2.0;
    poison = p /. 4.0;
  }

type plan = {
  p_kill : bool;
  p_torn : int option;
  p_ckpt_corrupt : int option;
}

let no_plan = { p_kill = false; p_torn = None; p_ckpt_corrupt = None }

(* Distinct stream tags so the round stream and the poison stream never
   correlate even at equal (seed, index). *)
let tag_round = 0x5EC1
let tag_poison = 0x5EC2

let draw rates ~seed ~round =
  if rates.kill = 0.0 then no_plan
  else begin
    let rng = Exec.Rng.create (Fault.mix (Fault.mix seed tag_round) round) in
    let hit p = Exec.Rng.float rng < p in
    let p_kill = hit rates.kill in
    (* Draw the damage kinds unconditionally so the stream position —
       and therefore every later round's decisions from this rng — does
       not depend on whether this round was killed. *)
    let torn = hit rates.torn_write in
    let torn_len = 1 + Exec.Rng.int rng 24 in
    let corrupt = hit rates.ckpt_corrupt in
    let salt = Exec.Rng.int rng 0x3FFFFFFF in
    if not p_kill then no_plan
    else
      {
        p_kill;
        p_torn = (if torn then Some torn_len else None);
        p_ckpt_corrupt = (if corrupt then Some salt else None);
      }
  end

let poisoned rates ~seed ~name =
  rates.poison > 0.0
  &&
  let h = Hashtbl.hash name in
  let rng = Exec.Rng.create (Fault.mix (Fault.mix seed tag_poison) h) in
  Exec.Rng.float rng < rates.poison
