(* Damage models for the fleet fault injector.

   Faults here simulate in-ring damage: the PT buffer or watchpoint
   log is harmed *before* the client seals its report, so the envelope
   checksum is consistent with the damaged payload and the server must
   catch the harm by structural validation (an unterminated stream, an
   out-of-range target, a trap on a statement that does not exist).
   Corruption is therefore structurally destructive by construction;
   value-preserving bit flips that decode to a plausible-but-wrong
   trace would need per-packet CRCs, which real PT does not have
   either (see DESIGN.md §7).

   Every function is a pure function of (salt, input). *)

let split_at n l =
  let rec go acc k = function
    | x :: tl when k > 0 -> go (x :: acc) (k - 1) tl
    | rest -> (List.rev acc, rest)
  in
  go [] n l

(* Drop a non-empty suffix of the packet stream: the ring lost its
   tail.  The result never ends with the stream's PGD terminator, so
   the hardened decoder reports [Truncated] (unless an earlier segment
   boundary is cut exactly, in which case the prefix is a complete,
   valid shorter trace -- also what real truncation can produce). *)
let truncate_packets ~salt packets =
  match packets with
  | [] -> []
  | _ ->
    let n = List.length packets in
    let rng = Exec.Rng.create (Fault.mix salt 0x7c1) in
    let keep = Exec.Rng.int rng n in
    fst (split_at keep packets)

(* Damage one packet in place.  All shapes are structurally invalid:
   a transfer target beyond the program, a PGE opening mid-segment, or
   a stray TIP where the decoder expects branch bits. *)
let corrupt_packets ~salt ~n_instrs packets =
  match packets with
  | [] -> []
  | _ ->
    let rng = Exec.Rng.create (Fault.mix salt 0x9e7) in
    let n = List.length packets in
    let idx = Exec.Rng.int rng n in
    let out_of_range () = n_instrs + 1 + Exec.Rng.int rng 64 in
    let damaged p =
      match Exec.Rng.int rng 3 with
      | 0 -> [ Hw.Pt.TIP (out_of_range ()) ]
      | 1 -> [ Hw.Pt.PGE (out_of_range ()) ]
      | _ -> [ Hw.Pt.TIP (out_of_range ()); p ]
    in
    List.concat (List.mapi (fun i p -> if i = idx then damaged p else [ p ]) packets)

(* Damage one watchpoint trap: point it at a statement that does not
   exist.  Caught by the server's semantic validation pass. *)
let corrupt_traps ~salt ~n_instrs traps =
  match traps with
  | [] -> []
  | _ ->
    let rng = Exec.Rng.create (Fault.mix salt 0x5b3) in
    let n = List.length traps in
    let idx = Exec.Rng.int rng n in
    let bad_iid = n_instrs + 1 + Exec.Rng.int rng 64 in
    List.mapi
      (fun i (t : Hw.Watchpoint.trap) ->
        if i = idx then { t with Hw.Watchpoint.w_iid = bad_iid } else t)
      traps

(* Whether a [Wp_corrupt] hit damages the log in-ring (pre-seal,
   caught semantically) or the report bytes in transit (post-seal,
   caught by the envelope checksum).  Both validation layers stay
   exercised under any fault mix. *)
let wp_corrupt_in_transit ~salt =
  let rng = Exec.Rng.create (Fault.mix salt 0x3d9) in
  Exec.Rng.bool rng

(* --- wire-level damage: harm lands on the encoded ring bytes --- *)

(* Cut the encoded ring short: keep a non-empty strict prefix of the
   bytes.  The ring's count header promises more packets than survive,
   so the decoder always reports [Truncated] (either a packet is cut
   mid-byte or the stream ends cleanly short of the count) -- never
   [Empty_stream], which is reserved for dropped rings. *)
let truncate_wire ~salt bytes =
  let n = String.length bytes in
  if n <= 1 then bytes
  else begin
    let rng = Exec.Rng.create (Fault.mix salt 0x7c1) in
    let keep = 1 + Exec.Rng.int rng (n - 1) in
    String.sub bytes 0 keep
  end

(* Damage one packet *through* the encoding: decode the ring, corrupt
   one packet structurally, re-encode.  The harm is expressed in ring
   bytes (what a real flipped page would carry) yet stays structurally
   destructive by construction -- an arbitrary byte flip could decode
   to a plausible-but-wrong trace, which per-packet-CRC-less PT cannot
   catch (DESIGN.md §7), so we don't model it as silent damage. *)
let corrupt_wire_packets ~salt ~n_instrs bytes =
  let packets, _ = Hw.Pt.Wire.decode bytes in
  match packets with
  | [] -> bytes
  | _ -> Hw.Pt.Wire.encode (corrupt_packets ~salt ~n_instrs packets)

(* In-transit damage to an already-sealed byte envelope: flip one bit
   of one byte.  The envelope digest covers every byte, so the server
   books this as checksum damage. *)
let flip_wire_byte ~salt bytes =
  let n = String.length bytes in
  if n = 0 then bytes
  else begin
    let rng = Exec.Rng.create (Fault.mix salt 0x6e5) in
    let idx = Exec.Rng.int rng n in
    let bit = Exec.Rng.int rng 8 in
    let b = Bytes.of_string bytes in
    Bytes.set b idx (Char.chr (Char.code (Bytes.get b idx) lxor (1 lsl bit)));
    Bytes.unsafe_to_string b
  end
