(** The seeded fleet fault model: independent per-kind probabilities,
    with every injection decision a pure function of
    (campaign seed, client index, delivery attempt) — bit-identical at
    any job count, replayable from the seed. *)

type kind =
  | Crash        (** client dies mid-run; nothing is ever sent *)
  | Drop         (** the report is lost in transit *)
  | Pt_truncate  (** the PT packet ring loses its tail *)
  | Pt_corrupt   (** PT packets damaged in the ring *)
  | Wp_corrupt   (** watchpoint log damaged (in ring or in transit) *)
  | Straggler    (** the report arrives after the collection deadline *)
  | Stale_plan   (** the client ran the previous plan version *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type rates = {
  crash : float;
  drop : float;
  pt_truncate : float;
  pt_corrupt : float;
  wp_corrupt : float;
  straggler : float;
  stale_plan : float;
}

val zero : rates
val rate_of : rates -> kind -> float
val with_rate : rates -> kind -> float -> rates
val is_zero : rates -> bool

(** Probability that at least one fault hits a delivery attempt. *)
val aggregate : rates -> float

(** The uniform per-kind probability whose {!aggregate} equals the
    argument: how a single [--fault-rate] knob spreads over the
    taxonomy. *)
val spread : float -> rates

val pp : Format.formatter -> rates -> unit

(** {1 Per-attempt injection decisions} *)

type injection = {
  j_crash : bool;
  j_drop : bool;
  j_straggler : bool;
  j_stale_plan : bool;
  j_pt_truncate : int option;  (** tamper salt *)
  j_pt_corrupt : int option;
  j_wp_corrupt : int option;
}

val none : injection
val is_none : injection -> bool

(** Deterministic avalanche mix (exposed for tamper salts). *)
val mix : int -> int -> int

(** [draw rates ~seed ~client ~attempt] decides every fault kind
    independently.  With {!is_zero} rates this is {!none} and costs
    nothing. *)
val draw : rates -> seed:int -> client:int -> attempt:int -> injection

(** The injected kinds, in taxonomy order — the ground-truth ledger. *)
val kinds_of : injection -> kind list
