(** The seeded service fault model — chaos at the scheduler layer,
    where {!Fault} is chaos at the fleet layer.

    Four kinds, mirroring how a crash-only diagnosis service actually
    dies in production: the whole process killed between rounds, the
    durable checkpoint it wants to restart from corrupted on disk, the
    journal's tail torn by a crash mid-[write(2)], and a single
    session's workload poisoned so its granted thunks raise.

    Every decision is a pure function of (campaign seed, round) or
    (campaign seed, session name, client index) — the same avalanche
    mix and RNG as {!Fault.draw} — so a chaos campaign is bit-identical
    at any job count and replayable from its seed. *)

type kind = Kill | Ckpt_corrupt | Torn_write | Poison

val all_kinds : kind list
val kind_name : kind -> string

type rates = {
  kill : float;          (** per-round: process dies after the round *)
  ckpt_corrupt : float;  (** per-kill: flip a byte in the newest checkpoint *)
  torn_write : float;    (** per-kill: the journal loses a ragged tail *)
  poison : float;        (** per-slot: the granted workload thunk raises *)
}

val zero : rates
val is_zero : rates -> bool

(** A uniform spread for one [--chaos] knob: [kill] gets the argument,
    the two recovery-damage kinds get half of it each (they only fire
    on a kill), [poison] gets a quarter. *)
val spread : float -> rates

(** What happens at the end of a round.  [p_kill = false] implies the
    other fields are inert. *)
type plan = {
  p_kill : bool;
  p_torn : int option;          (** bytes to tear off the journal tail *)
  p_ckpt_corrupt : int option;  (** tamper salt for the newest checkpoint *)
}

val no_plan : plan

(** [draw rates ~seed ~round] decides the fate of round [round]. *)
val draw : rates -> seed:int -> round:int -> plan

(** [poisoned rates ~seed ~name] decides whether session [name] is
    poisoned — every granted workload thunk raises, so the service's
    containment (strikes, then quarantine) is what stands between the
    poison and the scheduler.  Pure in its arguments, so the decision
    survives kill-and-recover: the replayed slots poison exactly like
    the originals. *)
val poisoned : rates -> seed:int -> name:string -> bool
