(* The seeded fleet fault model.

   Gist's premise is a cooperative fleet of production endpoints
   (paper §3.2.3); real fleets crash mid-run, lose reports in transit,
   truncate Intel-PT rings, damage watchpoint logs, straggle past the
   collection deadline, and keep running stale instrumentation plans.
   Each fault kind has an independent probability, and the decision
   for a given (campaign seed, client index, delivery attempt) is a
   pure function of those three values -- so an injected fleet is
   bit-identical at any [--jobs], and a failing configuration replays
   exactly from its seed. *)

type kind =
  | Crash        (* client dies mid-run; nothing is ever sent *)
  | Drop         (* the report is lost in transit *)
  | Pt_truncate  (* the PT packet ring loses its tail *)
  | Pt_corrupt   (* PT packets damaged in the ring *)
  | Wp_corrupt   (* watchpoint log damaged (in ring or in transit) *)
  | Straggler    (* the report arrives after the collection deadline *)
  | Stale_plan   (* the client ran the previous plan version *)

let all_kinds =
  [ Crash; Drop; Pt_truncate; Pt_corrupt; Wp_corrupt; Straggler; Stale_plan ]

let kind_name = function
  | Crash -> "crash"
  | Drop -> "drop"
  | Pt_truncate -> "pt-truncate"
  | Pt_corrupt -> "pt-corrupt"
  | Wp_corrupt -> "wp-corrupt"
  | Straggler -> "straggler"
  | Stale_plan -> "stale-plan"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type rates = {
  crash : float;
  drop : float;
  pt_truncate : float;
  pt_corrupt : float;
  wp_corrupt : float;
  straggler : float;
  stale_plan : float;
}

let zero =
  {
    crash = 0.0;
    drop = 0.0;
    pt_truncate = 0.0;
    pt_corrupt = 0.0;
    wp_corrupt = 0.0;
    straggler = 0.0;
    stale_plan = 0.0;
  }

let rate_of r = function
  | Crash -> r.crash
  | Drop -> r.drop
  | Pt_truncate -> r.pt_truncate
  | Pt_corrupt -> r.pt_corrupt
  | Wp_corrupt -> r.wp_corrupt
  | Straggler -> r.straggler
  | Stale_plan -> r.stale_plan

let with_rate r kind p =
  match kind with
  | Crash -> { r with crash = p }
  | Drop -> { r with drop = p }
  | Pt_truncate -> { r with pt_truncate = p }
  | Pt_corrupt -> { r with pt_corrupt = p }
  | Wp_corrupt -> { r with wp_corrupt = p }
  | Straggler -> { r with straggler = p }
  | Stale_plan -> { r with stale_plan = p }

let is_zero r = List.for_all (fun k -> rate_of r k <= 0.0) all_kinds

(* Probability that at least one fault hits a delivery attempt. *)
let aggregate r =
  1.0
  -. List.fold_left (fun acc k -> acc *. (1.0 -. rate_of r k)) 1.0 all_kinds

(* The per-kind probability that makes the aggregate equal [total]:
   the canonical way a single [--fault-rate] knob is spread over the
   whole taxonomy. *)
let spread total =
  if total <= 0.0 then zero
  else
    let total = min total 0.999999 in
    let n = float_of_int (List.length all_kinds) in
    let p = 1.0 -. ((1.0 -. total) ** (1.0 /. n)) in
    List.fold_left (fun r k -> with_rate r k p) zero all_kinds

let pp ppf r =
  let nonzero = List.filter (fun k -> rate_of r k > 0.0) all_kinds in
  if nonzero = [] then Fmt.string ppf "none"
  else
    Fmt.(list ~sep:(any ",") (fun ppf k ->
        Fmt.pf ppf "%s=%.4g" (kind_name k) (rate_of r k)))
      ppf nonzero

(* ------------------------------------------------------------------ *)
(* Per-attempt injection decisions. *)

type injection = {
  j_crash : bool;
  j_drop : bool;
  j_straggler : bool;
  j_stale_plan : bool;
  j_pt_truncate : int option;  (* tamper salt *)
  j_pt_corrupt : int option;
  j_wp_corrupt : int option;
}

let none =
  {
    j_crash = false;
    j_drop = false;
    j_straggler = false;
    j_stale_plan = false;
    j_pt_truncate = None;
    j_pt_corrupt = None;
    j_wp_corrupt = None;
  }

let is_none j = j = none

(* splitmix64-style avalanche, so that nearby (seed, client, attempt)
   triples draw unrelated fault decisions. *)
let mix a b =
  let open Int64 in
  let z = add (of_int a) (mul (of_int b) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logand (logxor z (shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

(* Every draw consumes the same rng stream whatever hits, so one
   kind's probability never perturbs another kind's decisions. *)
let draw rates ~seed ~client ~attempt =
  if is_zero rates then none
  else begin
    let rng = Exec.Rng.create (mix (mix seed client) attempt) in
    let hit p = Exec.Rng.float rng < p in
    let crash = hit rates.crash in
    let drop = hit rates.drop in
    let straggler = hit rates.straggler in
    let stale = hit rates.stale_plan in
    let trunc = hit rates.pt_truncate in
    let corrupt = hit rates.pt_corrupt in
    let wp = hit rates.wp_corrupt in
    let salt () = Exec.Rng.int rng 0x3FFFFFFF in
    let s_trunc = salt () and s_corrupt = salt () and s_wp = salt () in
    {
      j_crash = crash;
      j_drop = drop;
      j_straggler = straggler;
      j_stale_plan = stale;
      j_pt_truncate = (if trunc then Some s_trunc else None);
      j_pt_corrupt = (if corrupt then Some s_corrupt else None);
      j_wp_corrupt = (if wp then Some s_wp else None);
    }
  end

(* What an injection amounts to, in taxonomy order -- the ground-truth
   ledger the fleet statistics aggregate. *)
let kinds_of j =
  List.filter
    (fun k ->
      match k with
      | Crash -> j.j_crash
      | Drop -> j.j_drop
      | Pt_truncate -> j.j_pt_truncate <> None
      | Pt_corrupt -> j.j_pt_corrupt <> None
      | Wp_corrupt -> j.j_wp_corrupt <> None
      | Straggler -> j.j_straggler
      | Stale_plan -> j.j_stale_plan)
    all_kinds
