(** Damage models for the fleet fault injector: in-ring harm to PT
    packet streams and watchpoint logs, sealed into the report as-is
    and caught by the server's structural validation.  Pure functions
    of (salt, input). *)

(** Drop a non-empty suffix of a non-empty stream (the result is a
    strict prefix). *)
val truncate_packets : salt:int -> Hw.Pt.packet list -> Hw.Pt.packet list

(** Damage one packet structurally (out-of-range transfer target,
    misplaced PGE/TIP). *)
val corrupt_packets :
  salt:int -> n_instrs:int -> Hw.Pt.packet list -> Hw.Pt.packet list

(** Point one trap at a statement beyond the program. *)
val corrupt_traps :
  salt:int -> n_instrs:int -> Hw.Watchpoint.trap list ->
  Hw.Watchpoint.trap list

(** Whether a [Wp_corrupt] hit is in-transit (checksum-caught) rather
    than in-ring (semantically caught). *)
val wp_corrupt_in_transit : salt:int -> bool
