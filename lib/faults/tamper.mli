(** Damage models for the fleet fault injector: in-ring harm to PT
    packet streams and watchpoint logs, sealed into the report as-is
    and caught by the server's structural validation.  Pure functions
    of (salt, input). *)

(** Drop a non-empty suffix of a non-empty stream (the result is a
    strict prefix). *)
val truncate_packets : salt:int -> Hw.Pt.packet list -> Hw.Pt.packet list

(** Damage one packet structurally (out-of-range transfer target,
    misplaced PGE/TIP). *)
val corrupt_packets :
  salt:int -> n_instrs:int -> Hw.Pt.packet list -> Hw.Pt.packet list

(** Point one trap at a statement beyond the program. *)
val corrupt_traps :
  salt:int -> n_instrs:int -> Hw.Watchpoint.trap list ->
  Hw.Watchpoint.trap list

(** Whether a [Wp_corrupt] hit is in-transit (checksum-caught) rather
    than in-ring (semantically caught). *)
val wp_corrupt_in_transit : salt:int -> bool

(** Cut an encoded PT ring ([Hw.Pt.Wire]) to a non-empty strict byte
    prefix.  The ring's count header makes the loss detectable: the
    decoder reports [Truncated], never [Empty_stream]. *)
val truncate_wire : salt:int -> string -> string

(** Damage one packet through the ring encoding: decode, corrupt one
    packet structurally ({!corrupt_packets}), re-encode. *)
val corrupt_wire_packets : salt:int -> n_instrs:int -> string -> string

(** In-transit damage: flip one bit of one byte of a sealed envelope
    (caught by the envelope digest). *)
val flip_wire_byte : salt:int -> string -> string
