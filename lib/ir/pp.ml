(* Pretty-printing for IR values, instructions and whole programs. *)

open Types

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "%%%s" r
  | Imm n -> Fmt.pf ppf "%d" n
  | Str s -> Fmt.pf ppf "%S" s
  | Null -> Fmt.pf ppf "null"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | And -> "and" | Or -> "or"

let pp_expr ppf = function
  | Bin (op, a, b) ->
    Fmt.pf ppf "%s %a, %a" (binop_name op) pp_operand a pp_operand b
  | Mov a -> Fmt.pf ppf "mov %a" pp_operand a
  | Not a -> Fmt.pf ppf "not %a" pp_operand a

let pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_operand) ppf args

let pp_kind ppf = function
  | Assign (r, e) -> Fmt.pf ppf "%%%s = %a" r pp_expr e
  | Load (r, b, o) -> Fmt.pf ppf "%%%s = load %a[%d]" r pp_operand b o
  | Store (b, o, v) ->
    Fmt.pf ppf "store %a[%d] <- %a" pp_operand b o pp_operand v
  | Load_global (r, g) -> Fmt.pf ppf "%%%s = load @%s" r g
  | Store_global (g, v) -> Fmt.pf ppf "store @%s <- %a" g pp_operand v
  | Malloc (r, n) -> Fmt.pf ppf "%%%s = malloc %d" r n
  | Free p -> Fmt.pf ppf "free %a" pp_operand p
  | Call (Some r, f, args) -> Fmt.pf ppf "%%%s = call %s(%a)" r f pp_args args
  | Call (None, f, args) -> Fmt.pf ppf "call %s(%a)" f pp_args args
  | Builtin (Some r, f, args) ->
    Fmt.pf ppf "%%%s = builtin %s(%a)" r f pp_args args
  | Builtin (None, f, args) -> Fmt.pf ppf "builtin %s(%a)" f pp_args args
  | Jmp l -> Fmt.pf ppf "jmp %s" l
  | Branch (c, t, e) -> Fmt.pf ppf "br %a ? %s : %s" pp_operand c t e
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v
  | Ret None -> Fmt.pf ppf "ret"
  | Spawn (r, f, args) -> Fmt.pf ppf "%%%s = spawn %s(%a)" r f pp_args args
  | Join t -> Fmt.pf ppf "join %a" pp_operand t
  | Lock m -> Fmt.pf ppf "lock %a" pp_operand m
  | Unlock m -> Fmt.pf ppf "unlock %a" pp_operand m
  | Assert (c, msg) -> Fmt.pf ppf "assert %a %S" pp_operand c msg

let pp_instr ppf i =
  Fmt.pf ppf "[%4d] %a" i.iid pp_kind i.kind;
  if i.loc.line > 0 then Fmt.pf ppf "  ; %s:%d" i.loc.file i.loc.line

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@,%a@]" b.label
    Fmt.(array ~sep:(any "@,") pp_instr)
    b.instrs

let pp_func ppf f =
  Fmt.pf ppf "@[<v 2>func %s(%a):@,%a@]" f.fname
    Fmt.(list ~sep:(any ", ") string)
    f.params
    Fmt.(array ~sep:(any "@,") pp_block)
    f.blocks

let pp_program ppf p =
  List.iter (fun g -> Fmt.pf ppf "global @%s = %a@." g.gname pp_operand g.init)
    p.globals;
  Fmt.(list ~sep:(any "@.@.") pp_func) ppf p.funcs;
  Fmt.pf ppf "@."

let instr_to_string i = Fmt.str "%a" pp_instr i
let program_to_string p = Fmt.str "%a" pp_program p
