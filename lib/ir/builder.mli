(** A small construction DSL: bug programs read almost like the C
    excerpts in the paper's figures.  Instructions are created with
    iid 0; {!Program.make} renumbers them. *)

open Types

val instr : file:string -> ?line:int -> ?text:string -> instr_kind -> instr
val block : string -> instr list -> block
val func : string -> ?params:reg list -> block list -> func
val global : ?init:operand -> string -> global

(** Operand shorthands. *)

(** [r x] is the register operand [Reg x]. *)
val r : reg -> operand

(** [im n] is the immediate operand [Imm n]. *)
val im : int -> operand

(** [str s] is the string-literal operand [Str s]. *)
val str : string -> operand

(** Expression shorthands: [a +% b], [a <% b], ... build {!Types.expr}
    values from operands. *)

val ( +% ) : operand -> operand -> expr
val ( -% ) : operand -> operand -> expr
val ( *% ) : operand -> operand -> expr
val ( /% ) : operand -> operand -> expr
val ( =% ) : operand -> operand -> expr
val ( <>% ) : operand -> operand -> expr
val ( <% ) : operand -> operand -> expr
val ( <=% ) : operand -> operand -> expr
val ( >% ) : operand -> operand -> expr
val ( >=% ) : operand -> operand -> expr
val ( &&% ) : operand -> operand -> expr
val ( ||% ) : operand -> operand -> expr
val mov : operand -> expr
val not_ : operand -> expr

(** [file f] is a per-source-file instruction factory:
    [let i = Builder.file "pbzip2.c" in
     i 45 "f->mut = NULL;" (Store (r "f", 1, Null))]. *)
val file : string -> int -> string -> instr_kind -> instr
