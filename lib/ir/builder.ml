(* A small construction DSL: bug programs in [Bugbase] read almost like
   the C excerpts in the paper's figures. Instructions are created with
   iid 0; [Program.make] renumbers them. *)

open Types

let instr ~file ?(line = 0) ?(text = "") kind =
  { iid = 0; kind; loc = { file; line }; text }

let block label instrs =
  { label; instrs = Array.of_list instrs }

let func name ?(params = []) blocks =
  { fname = name; params; blocks = Array.of_list blocks }

let global ?(init = Imm 0) gname = { gname; init }

(* Operand shorthands. *)
let r x = Reg x
let im n = Imm n
let str s = Str s

(* Expression shorthands. *)
let ( +% ) a b = Bin (Add, a, b)
let ( -% ) a b = Bin (Sub, a, b)
let ( *% ) a b = Bin (Mul, a, b)
let ( /% ) a b = Bin (Div, a, b)
let ( =% ) a b = Bin (Eq, a, b)
let ( <>% ) a b = Bin (Ne, a, b)
let ( <% ) a b = Bin (Lt, a, b)
let ( <=% ) a b = Bin (Le, a, b)
let ( >% ) a b = Bin (Gt, a, b)
let ( >=% ) a b = Bin (Ge, a, b)
let ( &&% ) a b = Bin (And, a, b)
let ( ||% ) a b = Bin (Or, a, b)
let mov a = Mov a
let not_ a = Not a

(* A per-source-file instruction factory. Typical use:

     let i = Builder.file "pbzip2.c" in
     i 45 "f->mut = NULL;" (Store (r "f", 1, Null))
*)
let file f = fun line text kind -> instr ~file:f ~line ~text kind
