(* Program construction: iid assignment, indexing, and validation. *)

open Types

let func_exists funcs name = List.exists (fun f -> f.fname = name) funcs

(* Builtins the interpreter understands; calls to anything else must
   target a defined function. *)
let builtins =
  [ "print"; "print_int"; "strlen"; "str_char"; "str_concat"; "atoi";
    "yield"; "sleep"; "input_len"; "abs"; "min"; "max" ]

let is_terminator i =
  match i.kind with
  | Jmp _ | Branch _ | Ret _ -> true
  | _ -> false

let validate_func funcs globals f =
  if Array.length f.blocks = 0 then invalid "function %s has no blocks" f.fname;
  let labels = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      if Hashtbl.mem labels b.label then
        invalid "%s: duplicate label %s" f.fname b.label;
      Hashtbl.add labels b.label ())
    f.blocks;
  let check_label l =
    if not (Hashtbl.mem labels l) then
      invalid "%s: jump to unknown label %s" f.fname l
  in
  let gnames = List.map (fun g -> g.gname) globals in
  Array.iter
    (fun b ->
      let n = Array.length b.instrs in
      if n = 0 then invalid "%s/%s: empty block" f.fname b.label;
      Array.iteri
        (fun k i ->
          if k < n - 1 && is_terminator i then
            invalid "%s/%s: terminator not last in block" f.fname b.label;
          match i.kind with
          | Jmp l -> check_label l
          | Branch (_, t, e) -> check_label t; check_label e
          | Call (_, callee, _) ->
            if not (func_exists funcs callee) then
              invalid "%s: call to undefined function %s" f.fname callee
          | Builtin (_, name, _) ->
            if not (List.mem name builtins) then
              invalid "%s: unknown builtin %s" f.fname name
          | Spawn (_, callee, _) ->
            if not (func_exists funcs callee) then
              invalid "%s: spawn of undefined function %s" f.fname callee
          | Load_global (_, g) | Store_global (g, _) ->
            if not (List.mem g gnames) then
              invalid "%s: unknown global %s" f.fname g
          | _ -> ())
        b.instrs;
      if not (is_terminator b.instrs.(n - 1)) then
        invalid "%s/%s: block does not end in a terminator" f.fname b.label)
    f.blocks

(* Renumber every instruction with a fresh iid (in textual order, so
   that iid order coincides with program order within a function) and
   build the derived indexes. *)
let make ?(globals = []) ~main funcs =
  if not (func_exists funcs main) then invalid "main function %s undefined" main;
  List.iter (validate_func funcs globals) funcs;
  let counter = ref 0 in
  let by_iid = Hashtbl.create 256 in
  let funcs =
    List.map
      (fun f ->
        let blocks =
          Array.map
            (fun b ->
              let instrs =
                Array.map
                  (fun i ->
                    incr counter;
                    { i with iid = !counter })
                  b.instrs
              in
              { b with instrs })
            f.blocks
        in
        { f with blocks })
      funcs
  in
  List.iter
    (fun f ->
      Array.iteri
        (fun bi b ->
          Array.iteri
            (fun k i ->
              let pos = { p_func = f.fname; p_block = bi; p_index = k } in
              Hashtbl.replace by_iid i.iid (i, pos))
            b.instrs)
        f.blocks)
    funcs;
  let func_tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace func_tbl f.fname f) funcs;
  { globals; funcs; main; by_iid; func_tbl; n_instrs = !counter }

let find_func p name =
  match Hashtbl.find_opt p.func_tbl name with
  | Some f -> f
  | None -> invalid "unknown function %s" name

let instr_at p iid =
  match Hashtbl.find_opt p.by_iid iid with
  | Some (i, _) -> i
  | None -> invalid "unknown iid %d" iid

let position_of p iid =
  match Hashtbl.find_opt p.by_iid iid with
  | Some (_, pos) -> pos
  | None -> invalid "unknown iid %d" iid

let loc_of p iid = (instr_at p iid).loc
let text_of p iid = (instr_at p iid).text

(* All instructions of a function, in textual order. *)
let instrs_of_func f =
  Array.to_list f.blocks
  |> List.concat_map (fun b -> Array.to_list b.instrs)

let all_instrs p = List.concat_map instrs_of_func p.funcs

let iter_instrs p f = List.iter (fun i -> f i) (all_instrs p)

(* Number of distinct source lines spanned by a set of iids: the
   "source LOC" metric of Table 1. *)
let source_loc_count p iids =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun iid ->
      let l = loc_of p iid in
      if l.line > 0 then Hashtbl.replace seen (l.file, l.line) ())
    iids;
  Hashtbl.length seen

(* Registers read by an operand. *)
let operand_regs = function Reg r -> [ r ] | Imm _ | Str _ | Null -> []

let expr_operands = function
  | Bin (_, a, b) -> [ a; b ]
  | Mov a | Not a -> [ a ]

(* Operands read by an instruction (excluding labels). *)
let uses i =
  match i.kind with
  | Assign (_, e) -> expr_operands e
  | Load (_, base, _) -> [ base ]
  | Store (base, _, v) -> [ base; v ]
  | Load_global _ -> []
  | Store_global (_, v) -> [ v ]
  | Malloc _ -> []
  | Free p -> [ p ]
  | Call (_, _, args) | Builtin (_, _, args) | Spawn (_, _, args) -> args
  | Jmp _ -> []
  | Branch (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []
  | Join t -> [ t ]
  | Lock m | Unlock m -> [ m ]
  | Assert (c, _) -> [ c ]

(* Register defined by an instruction, if any. *)
let def i =
  match i.kind with
  | Assign (r, _) | Load (r, _, _) | Load_global (r, _) | Malloc (r, _)
  | Spawn (r, _, _) ->
    Some r
  | Call (d, _, _) | Builtin (d, _, _) -> d
  | Store _ | Store_global _ | Free _ | Jmp _ | Branch _ | Ret _ | Join _
  | Lock _ | Unlock _ | Assert _ ->
    None

let is_memory_access i =
  match i.kind with
  | Load _ | Store _ | Load_global _ | Store_global _ -> true
  | _ -> false
