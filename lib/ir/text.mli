(** A textual serialisation of IR programs (".gir" files).

    [parse (emit p)] rebuilds [p] exactly (iids are renumbered
    canonically by {!Program.make} either way).  Format:

    {v
    global counter = 0

    func main(n) {
    entry:
      %x = add %n, 3 @ main.c:4 "int x = n + 3;"
      store %p[1] <- %x
      %c = load @counter
      br %c ? then : out
    then:
      ...
    }

    main main
    v}

    Operands are [%reg], integers, ["strings"] and [null]; the optional
    [@ file:line "text"] annotation carries the source attribution
    shown in failure sketches; [#] starts a comment. *)

exception Parse_error of int * string  (** line number, message *)

(** Serialise a program to the textual format. *)
val emit : Types.program -> string

(** Parse; raises {!Parse_error} or {!Types.Invalid_program}. *)
val parse : string -> Types.program

(** Parse, as a result with a "line N: ..." message. *)
val parse_result : string -> (Types.program, string) result

(** Read/write a [.gir] file. *)

val load : string -> (Types.program, string) result
val save : string -> Types.program -> unit
