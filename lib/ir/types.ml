(* Intermediate representation for the Gist reproduction.

   The paper's prototype works on LLVM IR; this IR exposes the same
   concepts the slicing and instrumentation algorithms rely on: virtual
   registers, globals, function arguments, calls, explicit memory
   accesses, branches, and thread operations (spawn/join/lock/unlock),
   each carrying source-location metadata so sketches can be reported in
   "source lines" as well as "IR instructions" (Table 1 reports both). *)

type loc = { file : string; line : int }

let no_loc = { file = "<none>"; line = 0 }

type reg = string

type operand =
  | Reg of reg
  | Imm of int
  | Str of string
  | Null

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Bin of binop * operand * operand
  | Mov of operand
  | Not of operand

(* An instruction id ([iid]) is unique across the whole program and
   doubles as the program counter in the interpreter, in failure
   reports, and in Intel PT packets. *)
type iid = int

type instr_kind =
  | Assign of reg * expr
  | Load of reg * operand * int        (* dst <- mem[base + offset] *)
  | Store of operand * int * operand   (* mem[base + offset] <- value *)
  | Load_global of reg * string
  | Store_global of string * operand
  | Malloc of reg * int                (* dst <- fresh block of n cells *)
  | Free of operand
  | Call of reg option * string * operand list
  | Builtin of reg option * string * operand list
  | Jmp of string
  | Branch of operand * string * string  (* cond, then-label, else-label *)
  | Ret of operand option
  | Spawn of reg * string * operand list (* dst <- tid of new thread *)
  | Join of operand
  | Lock of operand
  | Unlock of operand
  | Assert of operand * string

type instr = {
  iid : iid;               (* unique, assigned by [Program.make] *)
  kind : instr_kind;
  loc : loc;
  text : string;           (* source-level text shown in sketches *)
}

type block = {
  label : string;
  instrs : instr array;
}

type func = {
  fname : string;
  params : reg list;
  blocks : block array;    (* blocks.(0) is the entry block *)
}

(* Globals are named memory cells; each receives a heap address at
   program start so that hardware watchpoints treat them uniformly
   with heap cells. *)
type global = { gname : string; init : operand }

type position = {
  p_func : string;
  p_block : int;   (* index into blocks *)
  p_index : int;   (* index into instrs *)
}

type program = {
  globals : global list;
  funcs : func list;
  main : string;
  (* Derived indexes, built by [Program.make]: *)
  by_iid : (iid, instr * position) Hashtbl.t;
  func_tbl : (string, func) Hashtbl.t;
  n_instrs : int;
}

exception Invalid_program of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_program s)) fmt
