(** Program construction, validation and indexing. *)

open Types

(** Intrinsics the interpreter understands: [print], [print_int],
    [strlen], [str_char], [str_concat], [atoi], [yield], [sleep],
    [input_len], [abs], [min], [max]. *)
val builtins : string list

(** [make ?globals ~main funcs] validates the functions (non-empty
    blocks, unique labels, resolvable branch targets / callees /
    globals, a terminator closing every block), assigns fresh iids in
    textual order, and builds the derived indexes.

    @raise Invalid_program on any structural error. *)
val make : ?globals:global list -> main:string -> func list -> program

(** Lookup helpers; all raise {!Types.Invalid_program} on unknown keys. *)

val find_func : program -> string -> func
val instr_at : program -> iid -> instr
val position_of : program -> iid -> position
val loc_of : program -> iid -> loc
val text_of : program -> iid -> string

(** All instructions of a function / program, in textual order. *)

val instrs_of_func : func -> instr list
val all_instrs : program -> instr list
val iter_instrs : program -> (instr -> unit) -> unit

(** Number of distinct source lines spanned by a set of iids: the
    "source LOC" metric of Table 1. *)
val source_loc_count : program -> iid list -> int

(** Registers read by an operand ([]) for immediates). *)
val operand_regs : operand -> reg list

val expr_operands : expr -> operand list

(** Operands an instruction reads (labels excluded). *)
val uses : instr -> operand list

(** The register an instruction defines, if any. *)
val def : instr -> reg option

(** Loads and stores (heap or global); the statements eligible for
    hardware watchpoints. *)
val is_memory_access : instr -> bool
