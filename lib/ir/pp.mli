(** Pretty-printing for IR values, instructions and whole programs. *)

open Types

val pp_operand : Format.formatter -> operand -> unit
val binop_name : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_kind : Format.formatter -> instr_kind -> unit

(** Renders "[iid] kind  ; file:line". *)
val pp_instr : Format.formatter -> instr -> unit

val pp_block : Format.formatter -> block -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
val instr_to_string : instr -> string
val program_to_string : program -> string
