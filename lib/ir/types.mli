(** Core types of the intermediate representation.

    The paper's prototype operates on LLVM IR; this IR exposes the same
    concepts its algorithms need: virtual registers, globals, function
    arguments, calls, explicit memory accesses, branches, and thread
    operations, each carrying source-location metadata so results can
    be reported both in source lines and in IR instructions (Table 1
    reports both). *)

(** A source location. [line = 0] means "no source attribution". *)
type loc = { file : string; line : int }

val no_loc : loc

(** Virtual register name.  Registers are function-local. *)
type reg = string

(** Instruction operands.  There is no operand-level address
    arithmetic: field accesses carry an explicit constant offset. *)
type operand =
  | Reg of reg        (** a virtual register *)
  | Imm of int        (** integer immediate *)
  | Str of string     (** string literal *)
  | Null              (** the null pointer *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

(** Pure computations (the right-hand side of an [Assign]). *)
type expr =
  | Bin of binop * operand * operand
  | Mov of operand
  | Not of operand

(** Unique instruction id, assigned by {!Program.make} in textual
    order.  It doubles as the program counter in the interpreter, in
    failure reports and in Intel PT packets. *)
type iid = int

type instr_kind =
  | Assign of reg * expr
  | Load of reg * operand * int
      (** [Load (dst, base, off)]: [dst <- mem\[base + off\]] *)
  | Store of operand * int * operand
      (** [Store (base, off, v)]: [mem\[base + off\] <- v] *)
  | Load_global of reg * string   (** read a named global cell *)
  | Store_global of string * operand  (** write a named global cell *)
  | Malloc of reg * int           (** allocate a fresh block of n cells *)
  | Free of operand               (** free a heap block (no-op on null) *)
  | Call of reg option * string * operand list
  | Builtin of reg option * string * operand list
      (** intrinsic call; see {!Program.builtins} *)
  | Jmp of string                 (** unconditional branch to a label *)
  | Branch of operand * string * string
      (** [Branch (cond, then_label, else_label)] *)
  | Ret of operand option
  | Spawn of reg * string * operand list
      (** create a thread running a named routine; yields its handle *)
  | Join of operand               (** block until a thread finishes *)
  | Lock of operand               (** acquire the mutex at an address *)
  | Unlock of operand             (** release the mutex at an address *)
  | Assert of operand * string    (** fail with a message when falsy *)

type instr = {
  iid : iid;      (** unique; 0 until {!Program.make} renumbers *)
  kind : instr_kind;
  loc : loc;
  text : string;  (** source-level text shown in failure sketches *)
}

(** A basic block: straight-line instructions ending in a terminator
    ([Jmp], [Branch] or [Ret]). *)
type block = {
  label : string;
  instrs : instr array;
}

type func = {
  fname : string;
  params : reg list;
  blocks : block array;  (** [blocks.(0)] is the entry block *)
}

(** A named global memory cell with a constant initialiser. *)
type global = { gname : string; init : operand }

(** Where an instruction lives: function, block index, index in block. *)
type position = {
  p_func : string;
  p_block : int;
  p_index : int;
}

type program = {
  globals : global list;
  funcs : func list;
  main : string;
  by_iid : (iid, instr * position) Hashtbl.t;  (** derived index *)
  func_tbl : (string, func) Hashtbl.t;         (** derived index *)
  n_instrs : int;
}

(** Raised by {!Program.make} on malformed programs and by index
    lookups on unknown names/iids. *)
exception Invalid_program of string

(** [invalid fmt ...] raises {!Invalid_program} with a formatted
    message. *)
val invalid : ('a, Format.formatter, unit, 'b) format4 -> 'a
