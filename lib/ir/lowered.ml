(* The lowered execution form: compile the IR once, run it fast
   everywhere.

   [Program.make] produces a validated but *nominal* program: registers
   are strings, jump targets are labels, callees and globals are names,
   and builtins are identified by string.  The interpreter used to
   re-resolve all of those on every instruction — a Hashtbl probe per
   register read, an O(blocks) scan per goto, a string comparison chain
   per builtin.  Lowering resolves every name exactly once:

   - registers   -> dense integer slots per function (frames become
                    [Value.t array] instead of string Hashtbls);
   - labels      -> block indices ([LJmp]/[LBranch] carry ints);
   - callees     -> indices into the function table ([LCall]/[LSpawn]);
   - globals     -> indices into the global table;
   - builtins    -> an opcode variant dispatched by [match];
   - scheduler predicates (is this a preemption point? a yield?) are
     precomputed per instruction.

   Each lowered instruction keeps a pointer to its original [instr], so
   observation hooks, failure reports and sketches still see the
   source-level form; the engine never consults it on the hot path.

   The module also builds [l_dsteps], an iid-indexed control-flow
   successor table used by the Intel PT decoder: re-walking a trace
   becomes one array load per instruction instead of a by-iid Hashtbl
   probe plus a label scan.

   Name-resolution failures surface here, at load time, as
   {!Lower_error} — not as a runtime crash mid-execution.  For programs
   built through [Program.make] (which validates) lowering cannot fail;
   the error exists for hand-assembled [program] values. *)

open Types

exception Lower_error of string

let lower_error fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

type lop =
  | LReg of int
  | LImm of int
  | LStr of string
  | LNull

type lexpr =
  | LBin of binop * lop * lop
  | LMov of lop
  | LNot of lop

(* One constructor per name in [Program.builtins]. *)
type builtin_op =
  | B_print
  | B_print_int
  | B_strlen
  | B_str_char
  | B_str_concat
  | B_atoi
  | B_yield
  | B_sleep
  | B_input_len
  | B_abs
  | B_min
  | B_max

type lkind =
  | LAssign of int * lexpr
  | LLoad of int * lop * int
  | LStore of lop * int * lop
  | LLoad_global of int * int          (* dst slot, global index *)
  | LStore_global of int * lop         (* global index, value *)
  | LMalloc of int * int
  | LFree of lop
  | LCall of int option * int * lop array   (* dst slot, func index, args *)
  | LBuiltin of int option * builtin_op * string * lop array
      (* the name rides along only for crash messages *)
  | LJmp of int                        (* block index *)
  | LBranch of lop * int * int         (* cond, then block, else block *)
  | LRet of lop option
  | LSpawn of int * int * lop array    (* dst slot, func index, args *)
  | LJoin of lop
  | LLock of lop
  | LUnlock of lop
  | LAssert of lop * string

type linstr = {
  li_iid : iid;
  li_kind : lkind;
  li_instr : instr;        (* original form, for hooks and reports *)
  li_interesting : bool;   (* scheduling point (shared access / sync)? *)
  li_yield : bool;         (* yield/sleep builtin? *)
}

type lfunc = {
  lf_index : int;
  lf_name : string;
  lf_params : int array;        (* parameter slots, in declaration order *)
  lf_nslots : int;
  lf_slot_names : string array; (* slot -> register name (error messages) *)
  lf_slots : (string, int) Hashtbl.t; (* register name -> slot *)
  lf_blocks : linstr array array;     (* lf_blocks.(0) is the entry *)
}

(* Control-flow successor of one instruction, for the PT decoder's
   trace re-walk. *)
type dstep =
  | D_jump of iid            (* unconditional: first iid of the target *)
  | D_branch of iid * iid    (* first iids of the then/else blocks *)
  | D_call of iid            (* callee entry iid *)
  | D_ret
  | D_fall of iid            (* straight-line: next instruction *)
  | D_stop                   (* straight-line at block end (malformed) *)

type t = {
  l_program : program;
  l_funcs : lfunc array;
  l_func_index : (string, int) Hashtbl.t;
  l_main : int;
  l_globals : global array;  (* in [program.globals] order *)
  l_global_index : (string, int) Hashtbl.t;
  l_dsteps : dstep array;    (* indexed by iid; slot 0 unused *)
  l_instrs : instr array;    (* indexed by iid; original instructions *)
}

(* ------------------------------------------------------------------ *)

let builtin_op_of_name fname = function
  | "print" -> B_print
  | "print_int" -> B_print_int
  | "strlen" -> B_strlen
  | "str_char" -> B_str_char
  | "str_concat" -> B_str_concat
  | "atoi" -> B_atoi
  | "yield" -> B_yield
  | "sleep" -> B_sleep
  | "input_len" -> B_input_len
  | "abs" -> B_abs
  | "min" -> B_min
  | "max" -> B_max
  | name -> lower_error "%s: unknown builtin %s" fname name

(* Same predicates the scheduler used to evaluate per step. *)
let interesting i =
  match i.kind with
  | Load _ | Store _ | Load_global _ | Store_global _ | Lock _ | Unlock _
  | Free _ | Join _ | Spawn _ ->
    true
  | Builtin (_, ("yield" | "sleep"), _) -> true
  | _ -> false

let is_yield i =
  match i.kind with Builtin (_, ("yield" | "sleep"), _) -> true | _ -> false

let lower_func ~func_index ~global_index fidx (f : func) =
  (* Dense slot assignment: parameters first, then every register in
     order of appearance.  A register that is read but never defined
     still gets a slot; it simply stays unbound, and reading it crashes
     exactly as the nominal interpreter did. *)
  let slots = Hashtbl.create 16 in
  let names = ref [] in
  let nslots = ref 0 in
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.add slots r s;
      names := r :: !names;
      s
  in
  let params = Array.of_list (List.map slot f.params) in
  let lop = function
    | Reg r -> LReg (slot r)
    | Imm n -> LImm n
    | Str s -> LStr s
    | Null -> LNull
  in
  let lexpr = function
    | Bin (op, a, b) -> LBin (op, lop a, lop b)
    | Mov a -> LMov (lop a)
    | Not a -> LNot (lop a)
  in
  let labels = Hashtbl.create 8 in
  Array.iteri (fun bi b -> Hashtbl.replace labels b.label bi) f.blocks;
  let block_of l =
    match Hashtbl.find_opt labels l with
    | Some bi -> bi
    | None -> lower_error "%s: jump to unknown label %s" f.fname l
  in
  let func_of callee =
    match Hashtbl.find_opt func_index callee with
    | Some k -> k
    | None -> lower_error "%s: call to undefined function %s" f.fname callee
  in
  let global_of g =
    match Hashtbl.find_opt global_index g with
    | Some k -> k
    | None -> lower_error "%s: unknown global %s" f.fname g
  in
  let lower_instr (i : instr) =
    let k =
      match i.kind with
      | Assign (r, e) -> LAssign (slot r, lexpr e)
      | Load (r, base, off) -> LLoad (slot r, lop base, off)
      | Store (base, off, v) -> LStore (lop base, off, lop v)
      | Load_global (r, g) -> LLoad_global (slot r, global_of g)
      | Store_global (g, v) -> LStore_global (global_of g, lop v)
      | Malloc (r, n) -> LMalloc (slot r, n)
      | Free p -> LFree (lop p)
      | Call (dst, callee, args) ->
        LCall
          ( Option.map slot dst,
            func_of callee,
            Array.of_list (List.map lop args) )
      | Builtin (dst, name, args) ->
        LBuiltin
          ( Option.map slot dst,
            builtin_op_of_name f.fname name,
            name,
            Array.of_list (List.map lop args) )
      | Jmp l -> LJmp (block_of l)
      | Branch (c, lt, le) -> LBranch (lop c, block_of lt, block_of le)
      | Ret v -> LRet (Option.map lop v)
      | Spawn (r, routine, args) ->
        LSpawn
          (slot r, func_of routine, Array.of_list (List.map lop args))
      | Join t -> LJoin (lop t)
      | Lock m -> LLock (lop m)
      | Unlock m -> LUnlock (lop m)
      | Assert (c, msg) -> LAssert (lop c, msg)
    in
    {
      li_iid = i.iid;
      li_kind = k;
      li_instr = i;
      li_interesting = interesting i;
      li_yield = is_yield i;
    }
  in
  let blocks = Array.map (fun b -> Array.map lower_instr b.instrs) f.blocks in
  {
    lf_index = fidx;
    lf_name = f.fname;
    lf_params = params;
    lf_nslots = !nslots;
    lf_slot_names = Array.of_list (List.rev !names);
    lf_slots = slots;
    lf_blocks = blocks;
  }

(* The decoder's successor table: iids are contiguous from 1 (assigned
   by [Program.make] in textual order), so one array covers the whole
   program. *)
let build_dsteps (p : program) =
  let dsteps = Array.make (p.n_instrs + 1) D_ret in
  let entry_iid (f : func) = f.blocks.(0).instrs.(0).iid in
  List.iter
    (fun (f : func) ->
      let labels = Hashtbl.create 8 in
      Array.iteri (fun bi b -> Hashtbl.replace labels b.label bi) f.blocks;
      let first_of l = f.blocks.(Hashtbl.find labels l).instrs.(0).iid in
      Array.iter
        (fun b ->
          let n = Array.length b.instrs in
          Array.iteri
            (fun k (i : instr) ->
              dsteps.(i.iid) <-
                (match i.kind with
                 | Jmp l -> D_jump (first_of l)
                 | Branch (_, lt, le) -> D_branch (first_of lt, first_of le)
                 | Call (_, callee, _) ->
                   D_call
                     (entry_iid
                        (List.find (fun g -> g.fname = callee) p.funcs))
                 | Ret _ -> D_ret
                 | _ ->
                   if k + 1 < n then D_fall b.instrs.(k + 1).iid else D_stop))
            b.instrs)
        f.blocks)
    p.funcs;
  dsteps

let lower (p : program) : t =
  let funcs = Array.of_list p.funcs in
  let func_index = Hashtbl.create 16 in
  Array.iteri (fun k (f : func) -> Hashtbl.replace func_index f.fname k) funcs;
  let globals = Array.of_list p.globals in
  let global_index = Hashtbl.create 16 in
  Array.iteri
    (fun k (g : global) -> Hashtbl.replace global_index g.gname k)
    globals;
  let lfuncs =
    Array.mapi (fun k f -> lower_func ~func_index ~global_index k f) funcs
  in
  let main =
    match Hashtbl.find_opt func_index p.main with
    | Some k -> k
    | None -> lower_error "main function %s undefined" p.main
  in
  let dummy = { iid = 0; kind = Ret None; loc = no_loc; text = "" } in
  let instrs = Array.make (p.n_instrs + 1) dummy in
  List.iter
    (fun (f : func) ->
      Array.iter
        (fun b -> Array.iter (fun (i : instr) -> instrs.(i.iid) <- i) b.instrs)
        f.blocks)
    p.funcs;
  {
    l_program = p;
    l_funcs = lfuncs;
    l_func_index = func_index;
    l_main = main;
    l_globals = globals;
    l_global_index = global_index;
    l_dsteps = build_dsteps p;
    l_instrs = instrs;
  }
