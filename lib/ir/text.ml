(* A textual serialisation of IR programs (".gir" files): an emitter
   and a parser such that [parse (emit p)] rebuilds [p] exactly (up to
   iid renumbering, which [Program.make] makes canonical anyway).

   Format, line-oriented:

     global counter = 0
     global name = "init"

     func main(n) {
     entry:
       %x = add %n, 3 @ main.c:4 "int x = n + 3;"
       store %p[1] <- %x
       load @counter -> %c
       br %c ? then : out
     then:
       ...
     }

   Operands: %reg, integer, "string", null.  The optional annotation
   [@ file:line "text"] carries the source attribution shown in
   failure sketches. *)

open Types

(* ------------------------------------------------------------------ *)
(* Emission *)

let emit_operand b = function
  | Reg r -> Buffer.add_string b ("%" ^ r)
  | Imm n -> Buffer.add_string b (string_of_int n)
  | Str s -> Buffer.add_string b (Printf.sprintf "%S" s)
  | Null -> Buffer.add_string b "null"

let emit_operands b = function
  | [] -> ()
  | x :: tl ->
    emit_operand b x;
    List.iter (fun o -> Buffer.add_string b ", "; emit_operand b o) tl

let emit_expr b = function
  | Bin (op, x, y) ->
    Buffer.add_string b (Pp.binop_name op);
    Buffer.add_char b ' ';
    emit_operand b x;
    Buffer.add_string b ", ";
    emit_operand b y
  | Mov x ->
    Buffer.add_string b "mov ";
    emit_operand b x
  | Not x ->
    Buffer.add_string b "not ";
    emit_operand b x

let emit_kind b = function
  | Assign (r, e) ->
    Buffer.add_string b ("%" ^ r ^ " = ");
    emit_expr b e
  | Load (r, base, off) ->
    Buffer.add_string b ("%" ^ r ^ " = load ");
    emit_operand b base;
    Buffer.add_string b (Printf.sprintf "[%d]" off)
  | Store (base, off, v) ->
    Buffer.add_string b "store ";
    emit_operand b base;
    Buffer.add_string b (Printf.sprintf "[%d] <- " off);
    emit_operand b v
  | Load_global (r, g) -> Buffer.add_string b ("%" ^ r ^ " = load @" ^ g)
  | Store_global (g, v) ->
    Buffer.add_string b ("store @" ^ g ^ " <- ");
    emit_operand b v
  | Malloc (r, n) ->
    Buffer.add_string b (Printf.sprintf "%%%s = malloc %d" r n)
  | Free p ->
    Buffer.add_string b "free ";
    emit_operand b p
  | Call (dst, f, args) ->
    (match dst with
     | Some r -> Buffer.add_string b ("%" ^ r ^ " = ")
     | None -> ());
    Buffer.add_string b ("call " ^ f ^ "(");
    emit_operands b args;
    Buffer.add_char b ')'
  | Builtin (dst, f, args) ->
    (match dst with
     | Some r -> Buffer.add_string b ("%" ^ r ^ " = ")
     | None -> ());
    Buffer.add_string b ("builtin " ^ f ^ "(");
    emit_operands b args;
    Buffer.add_char b ')'
  | Jmp l -> Buffer.add_string b ("jmp " ^ l)
  | Branch (c, t, e) ->
    Buffer.add_string b "br ";
    emit_operand b c;
    Buffer.add_string b (" ? " ^ t ^ " : " ^ e)
  | Ret None -> Buffer.add_string b "ret"
  | Ret (Some v) ->
    Buffer.add_string b "ret ";
    emit_operand b v
  | Spawn (r, f, args) ->
    Buffer.add_string b ("%" ^ r ^ " = spawn " ^ f ^ "(");
    emit_operands b args;
    Buffer.add_char b ')'
  | Join t ->
    Buffer.add_string b "join ";
    emit_operand b t
  | Lock m ->
    Buffer.add_string b "lock ";
    emit_operand b m
  | Unlock m ->
    Buffer.add_string b "unlock ";
    emit_operand b m
  | Assert (c, msg) ->
    Buffer.add_string b "assert ";
    emit_operand b c;
    Buffer.add_string b (Printf.sprintf " %S" msg)

let emit program =
  let b = Buffer.create 4096 in
  List.iter
    (fun (g : global) ->
      Buffer.add_string b ("global " ^ g.gname ^ " = ");
      emit_operand b g.init;
      Buffer.add_char b '\n')
    program.globals;
  if program.globals <> [] then Buffer.add_char b '\n';
  List.iter
    (fun (f : func) ->
      Buffer.add_string b
        ("func " ^ f.fname ^ "(" ^ String.concat ", " f.params ^ ") {\n");
      Array.iter
        (fun (bl : block) ->
          Buffer.add_string b (bl.label ^ ":\n");
          Array.iter
            (fun (i : instr) ->
              Buffer.add_string b "  ";
              emit_kind b i.kind;
              if i.loc.line > 0 || i.text <> "" then
                Buffer.add_string b
                  (Printf.sprintf " @ %s:%d %S" i.loc.file i.loc.line i.text);
              Buffer.add_char b '\n')
            bl.instrs)
        f.blocks;
      Buffer.add_string b "}\n\n")
    program.funcs;
  Buffer.add_string b ("main " ^ program.main ^ "\n");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string (* line number, message *)

type token =
  | T_ident of string
  | T_reg of string
  | T_global_ref of string
  | T_int of int
  | T_str of string
  | T_punct of string

let fail_at lineno fmt =
  Format.kasprintf (fun m -> raise (Parse_error (lineno, m))) fmt

(* Tokenise one line; quoted strings use OCaml lexical conventions. *)
let tokenize lineno line =
  let n = String.length line in
  let toks = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let read_while p =
    let start = !pos in
    while !pos < n && p line.[!pos] do incr pos done;
    String.sub line start (!pos - start)
  in
  let read_string () =
    (* find the closing unescaped quote, then let Scanf decode *)
    let start = !pos in
    incr pos;
    let rec find () =
      if !pos >= n then fail_at lineno "unterminated string"
      else if line.[!pos] = '\\' then begin pos := !pos + 2; find () end
      else if line.[!pos] = '"' then incr pos
      else begin incr pos; find () end
    in
    find ();
    let lit = String.sub line start (!pos - start) in
    Scanf.sscanf lit "%S" (fun s -> s)
  in
  let rec go () =
    match peek () with
    | None -> ()
    | Some ' ' | Some '\t' ->
      incr pos;
      go ()
    | Some '#' -> () (* comment to end of line *)
    | Some '"' ->
      toks := T_str (read_string ()) :: !toks;
      go ()
    | Some '%' ->
      incr pos;
      toks := T_reg (read_while is_ident_char) :: !toks;
      go ()
    | Some '@' ->
      incr pos;
      (* "@" alone is the annotation marker; "@name" a global ref *)
      let id = read_while is_ident_char in
      toks := (if id = "" then T_punct "@" else T_global_ref id) :: !toks;
      go ()
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      incr pos;
      let _ = read_while (fun c -> c >= '0' && c <= '9') in
      let lit = String.sub line start (!pos - start) in
      (match int_of_string_opt lit with
       | Some v -> toks := T_int v :: !toks
       | None -> fail_at lineno "bad integer %S" lit);
      go ()
    | Some c when is_ident_char c ->
      toks := T_ident (read_while is_ident_char) :: !toks;
      go ()
    | Some '<' when !pos + 1 < n && line.[!pos + 1] = '-' ->
      pos := !pos + 2;
      toks := T_punct "<-" :: !toks;
      go ()
    | Some c ->
      incr pos;
      toks := T_punct (String.make 1 c) :: !toks;
      go ()
  in
  go ();
  List.rev !toks

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "mod" -> Some Mod | "eq" -> Some Eq
  | "ne" -> Some Ne | "lt" -> Some Lt | "le" -> Some Le
  | "gt" -> Some Gt | "ge" -> Some Ge | "and" -> Some And
  | "or" -> Some Or
  | _ -> None

(* Parser combinators over the token list of one line. *)
let parse_instr_tokens lineno toks =
  let operand = function
    | T_reg r :: tl -> (Reg r, tl)
    | T_int n :: tl -> (Imm n, tl)
    | T_str s :: tl -> (Str s, tl)
    | T_ident "null" :: tl -> (Null, tl)
    | _ -> fail_at lineno "operand expected"
  in
  let expect p tl =
    match tl with
    | T_punct q :: tl when q = p -> tl
    | _ -> fail_at lineno "expected %S" p
  in
  let rec args acc tl =
    match tl with
    | T_punct ")" :: tl -> (List.rev acc, tl)
    | T_punct "," :: tl ->
      let o, tl = operand tl in
      args (o :: acc) tl
    | _ ->
      let o, tl = operand tl in
      args (o :: acc) tl
  in
  let call_like tl =
    match tl with
    | T_ident f :: T_punct "(" :: tl ->
      let a, tl = args [] tl in
      (f, a, tl)
    | _ -> fail_at lineno "call syntax expected"
  in
  (* The annotation suffix: [@ file:line "text"]. *)
  let annotation tl =
    match tl with
    | [] -> ({ file = "<gir>"; line = 0 }, "", [])
    | T_punct "@" :: T_ident file :: T_punct ":" :: T_int line :: rest ->
      let text, rest =
        match rest with T_str s :: tl -> (s, tl) | _ -> ("", rest)
      in
      ({ file; line }, text, rest)
    | _ -> fail_at lineno "unexpected trailing tokens"
  in
  let body tl : instr_kind * token list =
    match tl with
    (* destination forms: %r = ... *)
    | T_reg r :: T_punct "=" :: tl -> (
      match tl with
      | T_ident "load" :: T_global_ref g :: tl -> (Load_global (r, g), tl)
      | T_ident "load" :: tl ->
        let base, tl = operand tl in
        let tl = expect "[" tl in
        (match tl with
         | T_int off :: tl -> (Load (r, base, off), expect "]" tl)
         | _ -> fail_at lineno "offset expected")
      | T_ident "malloc" :: T_int n :: tl -> (Malloc (r, n), tl)
      | T_ident "call" :: tl ->
        let f, a, tl = call_like tl in
        (Call (Some r, f, a), tl)
      | T_ident "builtin" :: tl ->
        let f, a, tl = call_like tl in
        (Builtin (Some r, f, a), tl)
      | T_ident "spawn" :: tl ->
        let f, a, tl = call_like tl in
        (Spawn (r, f, a), tl)
      | T_ident "mov" :: tl ->
        let x, tl = operand tl in
        (Assign (r, Mov x), tl)
      | T_ident "not" :: tl ->
        let x, tl = operand tl in
        (Assign (r, Not x), tl)
      | T_ident op :: tl when binop_of_name op <> None ->
        let x, tl = operand tl in
        let tl = expect "," tl in
        let y, tl = operand tl in
        (Assign (r, Bin (Option.get (binop_of_name op), x, y)), tl)
      | _ -> fail_at lineno "bad right-hand side")
    | T_ident "store" :: T_global_ref g :: T_punct "<-" :: tl ->
      let v, tl = operand tl in
      (Store_global (g, v), tl)
    | T_ident "store" :: tl ->
      let base, tl = operand tl in
      let tl = expect "[" tl in
      (match tl with
       | T_int off :: tl ->
         let tl = expect "]" tl in
         let tl = expect "<-" tl in
         let v, tl = operand tl in
         (Store (base, off, v), tl)
       | _ -> fail_at lineno "offset expected")
    | T_ident "free" :: tl ->
      let p, tl = operand tl in
      (Free p, tl)
    | T_ident "call" :: tl ->
      let f, a, tl = call_like tl in
      (Call (None, f, a), tl)
    | T_ident "builtin" :: tl ->
      let f, a, tl = call_like tl in
      (Builtin (None, f, a), tl)
    | T_ident "jmp" :: T_ident l :: tl -> (Jmp l, tl)
    | T_ident "br" :: tl ->
      let c, tl = operand tl in
      let tl = expect "?" tl in
      (match tl with
       | T_ident t :: T_punct ":" :: T_ident e :: tl -> (Branch (c, t, e), tl)
       | _ -> fail_at lineno "br targets expected")
    | T_ident "ret" :: [] -> (Ret None, [])
    | T_ident "ret" :: (T_punct "@" :: _ as tl) -> (Ret None, tl)
    | T_ident "ret" :: tl ->
      let v, tl = operand tl in
      (Ret (Some v), tl)
    | T_ident "join" :: tl ->
      let t, tl = operand tl in
      (Join t, tl)
    | T_ident "lock" :: tl ->
      let m, tl = operand tl in
      (Lock m, tl)
    | T_ident "unlock" :: tl ->
      let m, tl = operand tl in
      (Unlock m, tl)
    | T_ident "assert" :: tl ->
      let c, tl = operand tl in
      (match tl with
       | T_str msg :: tl -> (Assert (c, msg), tl)
       | _ -> fail_at lineno "assert message expected")
    | _ -> fail_at lineno "unknown instruction"
  in
  let kind, rest = body toks in
  let loc, text, rest = annotation rest in
  if rest <> [] then fail_at lineno "unexpected trailing tokens";
  { iid = 0; kind; loc; text }

let parse source =
  let lines = String.split_on_char '\n' source in
  let globals = ref [] in
  let funcs = ref [] in
  let main = ref None in
  (* current function / block under construction *)
  let cur_func : (string * reg list) option ref = ref None in
  let cur_blocks = ref [] in
  let cur_label = ref None in
  let cur_instrs = ref [] in
  let close_block lineno =
    match !cur_label with
    | None ->
      if !cur_instrs <> [] then fail_at lineno "instructions before a label"
    | Some l ->
      cur_blocks := { label = l; instrs = Array.of_list (List.rev !cur_instrs) } :: !cur_blocks;
      cur_label := None;
      cur_instrs := []
  in
  let close_func lineno =
    close_block lineno;
    match !cur_func with
    | None -> fail_at lineno "'}' outside a function"
    | Some (name, params) ->
      funcs :=
        { fname = name; params; blocks = Array.of_list (List.rev !cur_blocks) }
        :: !funcs;
      cur_func := None;
      cur_blocks := []
  in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      let toks = tokenize lineno line in
      match toks with
      | [] -> ()
      | T_ident "global" :: T_ident g :: T_punct "=" :: tl ->
        let init, rest =
          match tl with
          | T_reg _ :: _ -> fail_at lineno "global initialiser must be constant"
          | T_int n :: tl -> (Imm n, tl)
          | T_str s :: tl -> (Str s, tl)
          | T_ident "null" :: tl -> (Null, tl)
          | _ -> fail_at lineno "global initialiser expected"
        in
        if rest <> [] then fail_at lineno "unexpected trailing tokens";
        globals := { gname = g; init } :: !globals
      | T_ident "func" :: T_ident name :: T_punct "(" :: tl ->
        if !cur_func <> None then fail_at lineno "nested func";
        let rec params acc = function
          | T_punct ")" :: rest -> (List.rev acc, rest)
          | T_ident p :: T_punct "," :: tl -> params (p :: acc) tl
          | T_ident p :: tl -> params (p :: acc) tl
          | _ -> fail_at lineno "parameter list expected"
        in
        let ps, rest = params [] tl in
        (match rest with
         | [ T_punct "{" ] -> cur_func := Some (name, ps)
         | _ -> fail_at lineno "'{' expected")
      | [ T_punct "}" ] -> close_func lineno
      | [ T_ident "main"; T_ident m ] when !cur_func = None -> main := Some m
      | [ T_ident l; T_punct ":" ] when !cur_func <> None ->
        close_block lineno;
        cur_label := Some l
      | _ when !cur_func <> None && !cur_label <> None ->
        cur_instrs := parse_instr_tokens lineno toks :: !cur_instrs
      | _ -> fail_at lineno "unexpected line")
    lines;
  if !cur_func <> None then fail_at (List.length lines) "unterminated function";
  match !main with
  | None -> fail_at (List.length lines) "missing 'main <function>' directive"
  | Some m -> Program.make ~globals:(List.rev !globals) ~main:m (List.rev !funcs)

let parse_result source =
  match parse source with
  | p -> Ok p
  | exception Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)
  | exception Invalid_program msg -> Error msg

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_result s

let save path program =
  let oc = open_out path in
  output_string oc (emit program);
  close_out oc
