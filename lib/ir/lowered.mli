(** The lowered execution form: every name in the IR resolved exactly
    once, so the interpreter and the PT decoder run on integers.

    [Program.make] yields a nominal program (string registers, label
    jump targets, named callees/globals/builtins).  {!lower} compiles
    it into an interned form: registers become dense per-function
    slots, labels become block indices, callees and globals become
    table indices, builtins become an opcode variant, and the
    scheduler's per-instruction predicates are precomputed.  Each
    lowered instruction keeps its original {!Types.instr}, so hooks,
    failure reports and sketches are unchanged.

    Lowering is deterministic and pure; [Analysis.Cache.lowered]
    memoises it per program (keyed by physical identity, like the ICFG
    cache), so every run after the first reuses the compiled form. *)

open Types

(** Name resolution failed at load time (unknown label, callee, global
    or builtin).  Unreachable for programs built by [Program.make],
    which validates; hand-assembled [program] values fail here instead
    of crashing mid-run. *)
exception Lower_error of string

type lop =
  | LReg of int   (** register slot *)
  | LImm of int
  | LStr of string
  | LNull

type lexpr =
  | LBin of binop * lop * lop
  | LMov of lop
  | LNot of lop

(** One constructor per name in [Program.builtins]. *)
type builtin_op =
  | B_print
  | B_print_int
  | B_strlen
  | B_str_char
  | B_str_concat
  | B_atoi
  | B_yield
  | B_sleep
  | B_input_len
  | B_abs
  | B_min
  | B_max

type lkind =
  | LAssign of int * lexpr
  | LLoad of int * lop * int
  | LStore of lop * int * lop
  | LLoad_global of int * int          (** dst slot, global index *)
  | LStore_global of int * lop         (** global index, value *)
  | LMalloc of int * int
  | LFree of lop
  | LCall of int option * int * lop array  (** dst slot, func index, args *)
  | LBuiltin of int option * builtin_op * string * lop array
      (** the name rides along only for crash messages *)
  | LJmp of int                        (** block index *)
  | LBranch of lop * int * int         (** cond, then block, else block *)
  | LRet of lop option
  | LSpawn of int * int * lop array    (** dst slot, func index, args *)
  | LJoin of lop
  | LLock of lop
  | LUnlock of lop
  | LAssert of lop * string

type linstr = {
  li_iid : iid;
  li_kind : lkind;
  li_instr : instr;       (** original form, for hooks and reports *)
  li_interesting : bool;  (** scheduling point (shared access / sync)? *)
  li_yield : bool;        (** yield/sleep builtin? *)
}

type lfunc = {
  lf_index : int;
  lf_name : string;
  lf_params : int array;        (** parameter slots, in declaration order *)
  lf_nslots : int;
  lf_slot_names : string array; (** slot -> register name *)
  lf_slots : (string, int) Hashtbl.t;  (** register name -> slot *)
  lf_blocks : linstr array array;      (** [lf_blocks.(0)] is the entry *)
}

(** Control-flow successor of one instruction: the PT decoder re-walks
    a trace with one array load per instruction instead of a by-iid
    Hashtbl probe plus a label scan. *)
type dstep =
  | D_jump of iid           (** unconditional: first iid of the target *)
  | D_branch of iid * iid   (** first iids of the then/else blocks *)
  | D_call of iid           (** callee entry iid *)
  | D_ret
  | D_fall of iid           (** straight-line: next instruction *)
  | D_stop                  (** straight-line at block end (malformed) *)

type t = {
  l_program : program;
  l_funcs : lfunc array;
  l_func_index : (string, int) Hashtbl.t;
  l_main : int;
  l_globals : global array;  (** in [program.globals] order *)
  l_global_index : (string, int) Hashtbl.t;
  l_dsteps : dstep array;    (** indexed by iid; slot 0 unused *)
  l_instrs : instr array;    (** indexed by iid; original instructions *)
}

(** Compile [program].  Raises {!Lower_error} on unresolvable names
    (impossible for validated programs). *)
val lower : program -> t
