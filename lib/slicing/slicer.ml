(* Static backward slicing (paper §3.1, Algorithm 1).

   The algorithm is:
   - *interprocedural*: needed function arguments flow to the actuals at
     every call site (and spawn site, via the TICFG thread edges), and
     needed return values flow into the callee's return statements;
   - *path-insensitive*: every definition that may reach the failure is
     kept, regardless of path feasibility (runtime control-flow
     tracking filters the infeasible ones later);
   - *flow-sensitive*: the slice is ordered backward from the failing
     statement, so adaptive slice tracking can take "the last sigma
     statements before the failure";
   - *alias-free*: memory items are matched syntactically (same
     function, same base register, same field offset, or same global).
     Like the paper's Gist, stores reaching a load through a different
     pointer name are deliberately missed and recovered at runtime by
     hardware-watchpoint data-flow tracking (§3.2.3).

   Control dependencies are included: for every sliced statement, the
   branches it is control-dependent on (Ferrante-Ottenstein-Warren over
   the postdominator tree) join the slice with their condition items. *)

open Ir.Types

module Item = struct
  type t =
    | Reg_item of string * string      (* function, register *)
    | Global_item of string            (* global name *)
    | Mem_item of string * string * int (* function, base register, offset *)

  let compare = compare
end

module ItemSet = Set.Make (Item)
module IntSet = Set.Make (Int)

type entry = {
  e_iid : iid;
  e_dist : int; (* fixpoint round at which the statement joined the slice *)
}

type t = {
  failing : iid;
  program : program;
  entries : entry list; (* ordered: closest to the failure first *)
}

(* Items read by instruction [i] in function [fname]: the workset
   seeds of Algorithm 1 (getItems / getReadOperand / getWrittenOperand). *)
let items_used fname i =
  let of_operand = function
    | Reg r -> [ Item.Reg_item (fname, r) ]
    | Imm _ | Str _ | Null -> []
  in
  let base = List.concat_map of_operand (Ir.Program.uses i) in
  match i.kind with
  | Load (_, Reg b, off) -> Item.Mem_item (fname, b, off) :: base
  | Load_global (_, g) -> Item.Global_item g :: base
  | _ -> base

(* Does instruction [i] (in [fname]) define one of the [needed] items? *)
let defines ?alias needed fname i =
  let def_reg =
    match Ir.Program.def i with
    | Some r -> ItemSet.mem (Item.Reg_item (fname, r)) needed
    | None -> false
  in
  def_reg
  ||
  match i.kind with
  | Store (Reg b, off, _) -> (
    (* Alias-free matching (the paper's choice): same function, same
       base register, same field.  Stores reaching the load through a
       different pointer name are deliberately missed -- runtime
       data-flow tracking adds them back (§3.2.3).  With [alias], the
       match goes through may-alias points-to sets instead; the
       [extensions] experiment quantifies how much this inflates the
       slice (the paper's argument for omitting it). *)
    ItemSet.mem (Item.Mem_item (fname, b, off)) needed
    ||
    match alias with
    | None -> false
    | Some a ->
      ItemSet.exists
        (function
          | Item.Mem_item (f2, b2, off2) ->
            Alias.may_alias a ~func1:fname ~base1:b ~off1:off ~func2:f2
              ~base2:b2 ~off2
          | _ -> false)
        needed)
  | Store_global (g, _) -> ItemSet.mem (Item.Global_item g) needed
  | _ -> false

let compute ?alias program (report : Exec.Failure.report) =
  let icfg = Analysis.Cache.icfg program in
  let failing = report.pc in
  let failing_instr = Ir.Program.instr_at program failing in
  let failing_pos = Ir.Program.position_of program failing in
  let needed = ref (ItemSet.of_list (items_used failing_pos.p_func failing_instr)) in
  let in_slice = ref IntSet.empty in
  let dist = Hashtbl.create 64 in
  let round = ref 0 in
  let add_instr fname (i : instr) =
    if not (IntSet.mem i.iid !in_slice) then begin
      in_slice := IntSet.add i.iid !in_slice;
      Hashtbl.replace dist i.iid !round;
      needed := ItemSet.union !needed (ItemSet.of_list (items_used fname i));
      (* Control dependence: the branches deciding this statement. *)
      let cfg = Analysis.Icfg.cfg_of icfg fname in
      match Analysis.Cfg.find_iid cfg i.iid with
      | None -> ()
      | Some (bi, _) ->
        let controlling = (Analysis.Cfg.controlling_branches cfg).(bi) in
        List.iter
          (fun (br : instr) ->
            if not (IntSet.mem br.iid !in_slice) then begin
              in_slice := IntSet.add br.iid !in_slice;
              Hashtbl.replace dist br.iid !round;
              needed :=
                ItemSet.union !needed (ItemSet.of_list (items_used fname br))
            end)
          controlling
    end
  in
  add_instr failing_pos.p_func failing_instr;
  (* Fixpoint over the whole program.  Within each pass, functions are
     walked backward (flow sensitivity); new items found in one pass
     trigger another. *)
  let changed = ref true in
  while !changed do
    incr round;
    changed := false;
    let before = (ItemSet.cardinal !needed, IntSet.cardinal !in_slice) in
    List.iter
      (fun f ->
        let instrs = List.rev (Ir.Program.instrs_of_func f) in
        List.iter
          (fun (i : instr) ->
            if
              (not (IntSet.mem i.iid !in_slice))
              && defines ?alias !needed f.fname i
            then begin
              add_instr f.fname i;
              (* A needed call return value pulls in the callee's return
                 statements (getRetValues, Algorithm 1 line 11). *)
              match i.kind with
              | Call (_, callee, _) ->
                List.iter (add_instr callee) (Analysis.Icfg.returns_of icfg callee)
              | _ -> ()
            end)
          instrs)
      program.funcs;
    (* Interprocedural argument flow (getArgValues, line 14): a needed
       parameter of [f] pulls in every binding site (call or spawn,
       through the TICFG) and the corresponding actual's items. *)
    List.iter
      (fun f ->
        List.iteri
          (fun k param ->
            if ItemSet.mem (Item.Reg_item (f.fname, param)) !needed then
              List.iter
                (fun site_iid ->
                  let site = Ir.Program.instr_at program site_iid in
                  let site_pos = Ir.Program.position_of program site_iid in
                  let args =
                    match site.kind with
                    | Call (_, _, args) | Spawn (_, _, args) -> args
                    | _ -> []
                  in
                  match List.nth_opt args k with
                  | Some (Reg r) ->
                    let item = Item.Reg_item (site_pos.p_func, r) in
                    if not (ItemSet.mem item !needed) then begin
                      needed := ItemSet.add item !needed;
                      changed := true
                    end;
                    add_instr site_pos.p_func site
                  | Some _ -> add_instr site_pos.p_func site
                  | None -> ())
                (Analysis.Icfg.binding_sites_of icfg f.fname))
          f.params)
      program.funcs;
    let after = (ItemSet.cardinal !needed, IntSet.cardinal !in_slice) in
    if before <> after then changed := true
  done;
  (* Order entries closest-to-failure first: by discovery round, then,
     within the failing function, by backward textual distance from the
     failure; other functions after, by descending iid. *)
  let entries =
    IntSet.elements !in_slice
    |> List.map (fun iid ->
        { e_iid = iid; e_dist = Hashtbl.find dist iid })
    |> List.sort (fun a b ->
        if a.e_iid = failing then -1
        else if b.e_iid = failing then 1
        else
          let da = a.e_dist and db = b.e_dist in
          if da <> db then compare da db
          else
            (* Prefer statements textually before the failure, nearest
               first; then the ones after (loop-carried), nearest first. *)
            let key iid =
              if iid <= failing then (0, failing - iid) else (1, iid - failing)
            in
            compare (key a.e_iid) (key b.e_iid))
  in
  { failing; program; entries }

let iids t = List.map (fun e -> e.e_iid) t.entries

(* The sigma statements adaptive slice tracking monitors (§3.2.1):
   the closest [n] to the failure point. *)
let take t n =
  let rec first k = function
    | [] -> []
    | e :: tl -> if k = 0 then [] else e.e_iid :: first (k - 1) tl
  in
  first n t.entries

let instr_count t = List.length t.entries
let source_loc_count t = Ir.Program.source_loc_count t.program (iids t)

let mem t iid = List.exists (fun e -> e.e_iid = iid) t.entries

let pp ppf t =
  Fmt.pf ppf "@[<v>slice (failure at %d):@," t.failing;
  List.iter
    (fun e ->
      let i = Ir.Program.instr_at t.program e.e_iid in
      Fmt.pf ppf "  [d%d] %a@," e.e_dist Ir.Pp.pp_instr i)
    t.entries;
  Fmt.pf ppf "@]"
