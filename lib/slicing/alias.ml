(* A flow-insensitive, field-sensitive, Andersen-style points-to
   analysis over the IR.

   The paper's Gist deliberately does NOT use alias analysis: "in
   practice, it can be over 50% inaccurate, which would increase the
   static slice size that Gist would have to monitor at runtime"
   (§3.1).  This module exists to quantify that design argument on the
   Bugbase programs: the slicer can optionally match memory items
   through may-alias pointers instead of syntactic base names, and the
   [extensions] experiment reports how much the slices grow.

   Abstract objects are allocation sites (one per [Malloc]) and named
   globals; points-to sets flow through moves, pointer arithmetic,
   loads/stores of object fields, argument binding (calls and spawns)
   and returns, to a fixpoint. *)

open Ir.Types

type obj =
  | Site of iid       (* a malloc site *)
  | Global_obj of string

module ObjSet = Set.Make (struct
  type t = obj

  let compare = compare
end)

(* Points-to variables: registers (per function), global cells, and
   object fields. *)
type var =
  | V_reg of string * string   (* function, register *)
  | V_global of string
  | V_field of obj * int

type t = {
  pts : (var, ObjSet.t) Hashtbl.t;
  program : program;
}

let get t v = Option.value ~default:ObjSet.empty (Hashtbl.find_opt t.pts v)

let add_objs t v objs =
  let cur = get t v in
  let next = ObjSet.union cur objs in
  if ObjSet.equal cur next then false
  else begin
    Hashtbl.replace t.pts v next;
    true
  end

let var_of_operand fname = function
  | Reg r -> Some (V_reg (fname, r))
  | Imm _ | Str _ | Null -> None

(* One propagation pass over the whole program; true if anything grew. *)
let pass t icfg =
  let changed = ref false in
  let flow_into dst src_var =
    match src_var with
    | Some v -> if add_objs t dst (get t v) then changed := true
    | None -> ()
  in
  List.iter
    (fun (f : func) ->
      List.iter
        (fun (i : instr) ->
          match i.kind with
          | Malloc (r, _) ->
            if add_objs t (V_reg (f.fname, r)) (ObjSet.singleton (Site i.iid))
            then changed := true
          | Assign (r, Mov op) ->
            flow_into (V_reg (f.fname, r)) (var_of_operand f.fname op)
          | Assign (r, Bin ((Add | Sub), a, b)) ->
            (* pointer arithmetic keeps pointing into the same object *)
            flow_into (V_reg (f.fname, r)) (var_of_operand f.fname a);
            flow_into (V_reg (f.fname, r)) (var_of_operand f.fname b)
          | Assign _ -> ()
          | Load (r, base, off) ->
            (match var_of_operand f.fname base with
             | Some bv ->
               ObjSet.iter
                 (fun o ->
                   if add_objs t (V_reg (f.fname, r)) (get t (V_field (o, off)))
                   then changed := true)
                 (get t bv)
             | None -> ())
          | Store (base, off, v) ->
            (match var_of_operand f.fname base with
             | Some bv ->
               ObjSet.iter
                 (fun o ->
                   match var_of_operand f.fname v with
                   | Some vv ->
                     if add_objs t (V_field (o, off)) (get t vv) then
                       changed := true
                   | None -> ())
                 (get t bv)
             | None -> ())
          | Load_global (r, g) ->
            flow_into (V_reg (f.fname, r)) (Some (V_global g))
          | Store_global (g, v) ->
            flow_into (V_global g) (var_of_operand f.fname v)
          | Call (_, callee, args) | Spawn (_, callee, args) -> (
            (* arguments into parameters *)
            let cf = Ir.Program.find_func t.program callee in
            List.iteri
              (fun k p ->
                match List.nth_opt args k with
                | Some a ->
                  flow_into (V_reg (callee, p)) (var_of_operand f.fname a)
                | None -> ())
              cf.params;
            (* returns into the destination *)
            match i.kind with
            | Call (Some r, _, _) ->
              List.iter
                (fun (ret : instr) ->
                  match ret.kind with
                  | Ret (Some op) ->
                    flow_into (V_reg (f.fname, r)) (var_of_operand callee op)
                  | _ -> ())
                (Analysis.Icfg.returns_of icfg callee)
            | _ -> ())
          | Free _ | Builtin _ | Jmp _ | Branch _ | Ret _ | Join _ | Lock _
          | Unlock _ | Assert _ ->
            ())
        (Ir.Program.instrs_of_func f))
    t.program.funcs;
  !changed

let analyze program =
  let t = { pts = Hashtbl.create 128; program } in
  (* seed globals as their own objects so &global-style sharing works *)
  List.iter
    (fun (g : global) ->
      ignore (add_objs t (V_global g.gname) ObjSet.empty))
    program.globals;
  let icfg = Analysis.Cache.icfg program in
  let rec fix n = if n > 0 && pass t icfg then fix (n - 1) in
  fix 50;
  t

(* Points-to set of a register. *)
let points_to t ~func ~reg = get t (V_reg (func, reg))

(* May two field accesses touch the same cell?  Same offset and
   overlapping points-to sets of the bases. *)
let may_alias t ~func1 ~base1 ~off1 ~func2 ~base2 ~off2 =
  off1 = off2
  &&
  let p1 = points_to t ~func:func1 ~reg:base1 in
  let p2 = points_to t ~func:func2 ~reg:base2 in
  not (ObjSet.is_empty (ObjSet.inter p1 p2))

let pts_size t ~func ~reg = ObjSet.cardinal (points_to t ~func ~reg)
