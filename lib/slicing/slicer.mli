(** Static backward slicing (paper §3.1, Algorithm 1).

    The algorithm is {e interprocedural} (needed arguments flow to the
    actuals at every call and spawn site via the TICFG; needed return
    values flow into callee returns), {e path-insensitive} (every
    definition that may reach the failure is kept; runtime control-flow
    tracking filters infeasible ones later), {e flow-sensitive} (the
    slice is ordered backward from the failing statement, so adaptive
    slice tracking can take "the sigma statements closest to the
    failure"), and {e alias-free} (memory items match syntactically:
    same function, same base register, same field offset, or same
    global — stores reaching a load through a different pointer name
    are deliberately missed and recovered at runtime by watchpoint
    data-flow tracking, §3.2.3).

    Control dependencies are included: for every sliced statement, the
    branches it is control-dependent on join the slice with their
    condition items. *)

open Ir.Types

type entry = {
  e_iid : iid;
  e_dist : int;  (** fixpoint round at which the statement joined *)
}

type t = {
  failing : iid;
  program : program;
  entries : entry list;  (** ordered: closest to the failure first *)
}

(** [compute program report] slices backward from [report.pc].  With
    [alias], memory matching goes through {!Alias} may-alias sets
    instead of syntactic base names — the configuration the paper
    rejects for its slice-size cost (§3.1); the [extensions] experiment
    measures that cost. *)
val compute : ?alias:Alias.t -> program -> Exec.Failure.report -> t

(** All slice statements, closest-to-failure first. *)
val iids : t -> iid list

(** The sigma statements adaptive slice tracking monitors (§3.2.1):
    the [n] closest to the failure point (a prefix of {!iids}). *)
val take : t -> int -> iid list

val instr_count : t -> int
val source_loc_count : t -> int
val mem : t -> iid -> bool
val pp : Format.formatter -> t -> unit
