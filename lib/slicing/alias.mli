(** A flow-insensitive, field-sensitive, Andersen-style points-to
    analysis.

    The paper's Gist deliberately omits alias analysis ("it can be over
    50% inaccurate, which would increase the static slice size",
    §3.1).  This module quantifies that argument: {!Slicer.compute}
    can match memory items through {!may_alias} instead of syntactic
    base names, and the [extensions] experiment reports the slice
    growth. *)

open Ir.Types

(** Abstract objects: allocation sites and named globals. *)
type obj =
  | Site of iid
  | Global_obj of string

module ObjSet : Set.S with type elt = obj

type t

val analyze : program -> t

(** Points-to set of a register in a function. *)
val points_to : t -> func:string -> reg:string -> ObjSet.t

(** May two field accesses touch the same cell (same offset,
    overlapping base points-to sets)? *)
val may_alias :
  t ->
  func1:string -> base1:string -> off1:int ->
  func2:string -> base2:string -> off2:int ->
  bool

val pts_size : t -> func:string -> reg:string -> int
