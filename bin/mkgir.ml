(* One-shot helper to ship example .gir files (run via dune exec). *)
let () =
  Ir.Text.save "examples/programs/pbzip2.gir" Bugbase.Pbzip2.program;
  Ir.Text.save "examples/programs/curl.gir" Bugbase.Curl.program;
  print_endline "wrote examples/programs/{pbzip2,curl}.gir"
