(* The Gist command-line interface.

     gist list                      -- the Bugbase inventory (Table 1 bugs)
     gist diagnose <bug> [options]  -- run the full pipeline, print the sketch
     gist slice <bug>               -- print the static backward slice
     gist baseline <bug>            -- rr vs Intel PT full-tracing comparison
     gist experiments [names...]    -- regenerate paper tables/figures *)

open Cmdliner

let find_bug name =
  match Bugbase.Registry.find name with
  | Some b -> Ok b
  | None ->
    Error
      (Printf.sprintf "unknown bug %S (known: %s)" name
         (String.concat ", " Bugbase.Registry.names))

let bug_arg =
  let doc = "Bugbase entry to operate on (see $(b,gist list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BUG" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel client execution; 0 is fully sequential. \
     Results are bit-identical at any value. Clamped to the machine's \
     available core count. Defaults to $(b,GIST_JOBS) when set, else to \
     the machine's recommended domain count minus one."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some n -> min (max 0 n) (Parallel.Jobs.available ())
  | None -> Parallel.Jobs.effective ()

(* Exit codes: 1 = usage/other error, 2 = program under test failed,
   3 = no failing run found (nothing to diagnose). *)
let exit_no_failure = 3

(* ------------------------------------------------------------------ *)
(* Fault-injection knobs, shared by diagnose and fuzz.  [--faults]
   alone spreads a 10% aggregate rate uniformly over the taxonomy;
   [--fault-rate] picks the aggregate; per-kind flags override the
   spread for their kind. *)

let faults_flag =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Enable seeded fault injection against the simulated fleet \
           (default aggregate rate 0.10, spread uniformly over the seven \
           fault kinds).")

let fault_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Aggregate per-dispatch fault probability, spread uniformly over \
           the seven fault kinds; implies $(b,--faults).")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed of the fault-injection stream, independent of run seeds; \
           every injection decision is a pure function of (seed, client, \
           attempt), so campaigns replay bit-identically.")

let per_kind_term =
  List.fold_left
    (fun acc kind ->
      let name = "fault-" ^ Faults.Fault.kind_name kind in
      let arg =
        Arg.(
          value
          & opt (some float) None
          & info [ name ] ~docv:"P"
              ~doc:
                (Printf.sprintf
                   "Per-dispatch probability of a %s fault; implies \
                    $(b,--faults)."
                   (Faults.Fault.kind_name kind)))
      in
      Term.(const (fun l v -> (kind, v) :: l) $ acc $ arg))
    (Term.const []) Faults.Fault.all_kinds

let faults_term =
  Term.(
    const (fun enabled rate fseed per_kind ->
        let clamp r = min 1.0 (max 0.0 r) in
        let per_kind =
          List.filter_map
            (fun (k, v) -> Option.map (fun r -> (k, clamp r)) v)
            per_kind
        in
        if (not enabled) && rate = None && per_kind = [] then None
        else
          let base =
            match rate with
            | Some r -> Faults.Fault.spread (clamp r)
            | None ->
              if per_kind = [] then Faults.Fault.spread 0.10
              else Faults.Fault.zero
          in
          let rates =
            List.fold_left
              (fun acc (k, r) -> Faults.Fault.with_rate acc k r)
              base per_kind
          in
          Some (rates, fseed))
    $ faults_flag $ fault_rate_arg $ fault_seed_arg $ per_kind_term)

let print_fleet (f : Gist.Server.fleet_stats) =
  Printf.printf
    "fleet: %d dispatched, %d delivered, %d valid; %d lost, %d rejected, %d \
     retried, %d quarantined, %d degraded iteration(s)\n"
    f.f_dispatched f.f_delivered f.f_valid f.f_lost f.f_rejected f.f_retried
    f.f_quarantined f.f_degraded_iters;
  let line label l =
    if l <> [] then
      Printf.printf "  %s: %s\n" label
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l))
  in
  line "injected" f.f_by_kind;
  line "rejections" f.f_by_reason

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-13s %-14s %-8s %-9s %s\n" "Name" "Software" "Version"
      "Bug id" "Failure";
    List.iter
      (fun (b : Bugbase.Common.t) ->
        Printf.printf "%-13s %-14s %-8s %-9s %s\n" b.name b.software b.version
          b.bug_id b.failure_type)
      Bugbase.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the Bugbase entries (the Table 1 bugs)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let sigma0_arg =
  let doc = "Initial tracked slice size sigma_0 (paper default: 2)." in
  Arg.(value & opt int 2 & info [ "sigma0" ] ~doc)

let no_cf_arg =
  let doc = "Disable control-flow tracking (Intel PT) -- Fig. 10 ablation." in
  Arg.(value & flag & info [ "no-control-flow" ] ~doc)

let no_df_arg =
  let doc = "Disable data-flow tracking (watchpoints) -- Fig. 10 ablation." in
  Arg.(value & flag & info [ "no-data-flow" ] ~doc)

let verbose_arg =
  let doc = "Also print the static slice and per-iteration progress." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let retained_arg =
  let doc =
    "Ingest reports through the retained-trace reference path instead of the \
     streaming accumulator (differential oracle; identical output)."
  in
  Arg.(value & flag & info [ "retained-ingest" ] ~doc)

let json_arg =
  let doc = "Emit the sketch as JSON instead of the ASCII rendering." in
  Arg.(value & flag & info [ "json" ] ~doc)

let no_early_exit_arg =
  let doc =
    "Disable the adaptive stopping rule and run the exhaustive AsT loop \
     (the reference oracle; same top-ranked predictors, more clients)."
  in
  Arg.(value & flag & info [ "no-early-exit" ] ~doc)

let separation_delta_arg =
  let doc =
    "Error rate of the separation confidence bound, in (0,1) (default 0.05)."
  in
  Arg.(
    value
    & opt float Gist.Config.default.Gist.Config.separation_delta
    & info [ "separation-delta" ] ~doc)

let checkpoint_every_arg =
  let doc =
    "Evaluate the separation bound every N consumed client slots (default 8)."
  in
  Arg.(
    value
    & opt int Gist.Config.default.Gist.Config.checkpoint_every
    & info [ "checkpoint-every" ] ~doc)

let diagnose_run name sigma0 no_cf no_df verbose json jobs faults retained
    no_early_exit separation_delta checkpoint_every =
  match find_bug name with
  | Error e -> prerr_endline e; 1
  | Ok bug -> (
    match Bugbase.Common.find_target_failure bug with
    | None ->
      prerr_endline
        "no failing run found: the target failure did not manifest in any \
         probed production run; nothing to diagnose";
      exit_no_failure
    | Some (_, failure) ->
      Printf.printf "failure report: %s\n\n"
        (Exec.Failure.report_to_string failure);
      let config =
        {
          Gist.Config.default with
          Gist.Config.sigma0;
          enable_cf = not no_cf;
          enable_df = not no_df;
          preempt_prob = bug.preempt_prob;
          (* The CLI defaults to the adaptive stopping rule; the
             exhaustive reference stays behind [--no-early-exit]. *)
          early_exit = not no_early_exit;
          separation_delta;
          checkpoint_every;
        }
      in
      (match Gist.Config.validate config with
       | Ok _ -> ()
       | Error e ->
         prerr_endline ("invalid configuration: " ^ Gist.Config.error_to_string e);
         exit 2);
      let config =
        match faults with
        | None -> config
        | Some (rates, fault_seed) ->
          { config with Gist.Config.fault_rates = rates; fault_seed }
      in
      let d =
        Parallel.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
            Gist.Server.diagnose ~config ~pool
              ~ingest:
                (if retained then Gist.Server.Retained else Gist.Server.Streaming)
              ~oracle:(Experiments.Oracle.for_bug bug)
              ~bug_name:(Printf.sprintf "%s bug #%s" bug.name bug.bug_id)
              ~failure_type:bug.failure_type ~program:bug.program
              ~workload_of:bug.workload_of ~failure ())
      in
      if verbose then begin
        Fmt.pr "%a@." Slicing.Slicer.pp d.slice;
        List.iter
          (fun (it : Gist.Server.iteration_info) ->
            (* The fleet-health suffix is empty on a healthy fleet, so
               zero-fault output is unchanged. *)
            let health =
              if
                it.it_lost + it.it_rejected + it.it_quarantined = 0
                && not it.it_degraded
              then ""
              else
                Printf.sprintf " lost=%d rejected=%d quarantined=%d%s"
                  it.it_lost it.it_rejected it.it_quarantined
                  (if it.it_degraded then " DEGRADED" else "")
            in
            let early =
              match it.it_early_exit with
              | None -> ""
              | Some e -> " early-exit=" ^ Gist.Server.early_exit_label e
            in
            Printf.printf
              "iteration: sigma=%d tracked=%d fails=%d succs=%d \
               overhead=%.2f%%%s%s\n"
              it.it_sigma it.it_tracked it.it_fails it.it_succs
              it.it_avg_overhead health early)
          d.trace;
        print_newline ()
      end;
      if json then print_endline (Fsketch.Export.to_json d.sketch)
      else begin
        Printf.printf
          "diagnosis: %d iterations, %d failure recurrences, %d monitored \
           runs, %.2f%% fleet overhead\n\n"
          d.iterations d.recurrences d.total_runs d.avg_overhead_pct;
        (let f = d.fleet in
         if
           faults <> None
           || f.Gist.Server.f_lost + f.Gist.Server.f_rejected
              + f.Gist.Server.f_quarantined + f.Gist.Server.f_degraded_iters
              > 0
         then begin
           print_fleet f;
           print_newline ()
         end);
        Fsketch.Render.print d.sketch;
        let acc =
          Fsketch.Accuracy.of_sketch d.sketch ~ideal:(Bugbase.Common.ideal bug)
        in
        Printf.printf
          "\naccuracy vs hand-built ideal sketch: relevance %.1f%%, ordering \
           %.1f%%, overall %.1f%%\n"
          acc.relevance acc.ordering acc.overall
      end;
      0)

let diagnose_cmd =
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Diagnose a Bugbase failure end-to-end and print its sketch")
    Term.(
      const diagnose_run $ bug_arg $ sigma0_arg $ no_cf_arg $ no_df_arg
      $ verbose_arg $ json_arg $ jobs_arg $ faults_term $ retained_arg
      $ no_early_exit_arg $ separation_delta_arg $ checkpoint_every_arg)

(* ------------------------------------------------------------------ *)

let slice_run name =
  match find_bug name with
  | Error e -> prerr_endline e; 1
  | Ok bug -> (
    match Bugbase.Common.find_target_failure bug with
    | None ->
      prerr_endline
        "no failing run found: the target failure did not manifest in any \
         probed production run; nothing to slice from";
      exit_no_failure
    | Some (_, failure) ->
      let slice = Slicing.Slicer.compute bug.program failure in
      Printf.printf "static backward slice: %d IR instructions / %d lines\n"
        (Slicing.Slicer.instr_count slice)
        (Slicing.Slicer.source_loc_count slice);
      Fmt.pr "%a@." Slicing.Slicer.pp slice;
      0)

let slice_cmd =
  Cmd.v
    (Cmd.info "slice" ~doc:"Print the static backward slice for a bug")
    Term.(const slice_run $ bug_arg)

(* ------------------------------------------------------------------ *)

let baseline_run name =
  match find_bug name with
  | Error e -> prerr_endline e; 1
  | Ok bug ->
    let row = Experiments.Fig13.row_for bug in
    Printf.printf "%s full-tracing overhead:\n" bug.name;
    Printf.printf "  record/replay (rr-style): %8.1f%%\n" row.rr_pct;
    Printf.printf "  Intel PT (hardware):      %8.2f%%\n" row.pt_pct;
    Printf.printf "  ratio:                    %8s\n"
      (if row.ratio = infinity then "inf"
       else Printf.sprintf "%.0fx" row.ratio);
    0

let baseline_cmd =
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Compare record/replay vs Intel PT full tracing on one bug")
    Term.(const baseline_run $ bug_arg)

(* ------------------------------------------------------------------ *)

(* Programs from .gir files: the textual IR format of [Ir.Text]. *)

let gir_arg =
  let doc = "Path to a .gir program (see Ir.Text for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let run_run path args seed =
  match Ir.Text.load path with
  | Error e -> prerr_endline e; 1
  | Ok program ->
    let values =
      List.map
        (fun a ->
          match int_of_string_opt a with
          | Some n -> Exec.Value.VInt n
          | None -> Exec.Value.VStr a)
        args
    in
    let res =
      Exec.Interp.run program (Exec.Interp.workload ~args:values seed)
    in
    List.iter print_endline res.output;
    (match res.outcome with
     | Exec.Interp.Success ->
       Printf.printf "success after %d steps
" res.steps;
       0
     | Exec.Interp.Failed rep ->
       Printf.printf "FAILURE after %d steps: %s
" res.steps
         (Exec.Failure.report_to_string rep);
       (match (Ir.Program.loc_of program rep.pc).line with
        | 0 -> ()
        | line -> Printf.printf "  at source line %d
" line);
       2)

let run_cmd =
  let args =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG"
           ~doc:"Arguments bound to main's parameters (ints or strings).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scheduling seed.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a .gir program under the interpreter")
    Term.(const run_run $ gir_arg $ args $ seed)

let show_run path =
  match Ir.Text.load path with
  | Error e -> prerr_endline e; 1
  | Ok program ->
    Fmt.pr "%a@." Ir.Pp.pp_program program;
    0

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Parse a .gir program and print its IR")
    Term.(const show_run $ gir_arg)

(* ------------------------------------------------------------------ *)

let experiments_run jobs names =
  Option.iter (fun n -> Parallel.Jobs.set_default (max 0 n)) jobs;
  let known =
    [
      ("table1", Experiments.Table1.print);
      ("fig9", Experiments.Fig9.print);
      ("fig10", Experiments.Fig10.print);
      ("fig11", Experiments.Fig11.print);
      ("fig12", Experiments.Fig12.print);
      ("fig13", Experiments.Fig13.print);
      ("summary", Experiments.Summary.print);
    ("extensions", Experiments.Extensions.print);
    ("adaptive", Experiments.Adaptive.print);
    ]
  in
  let selected = if names = [] then List.map fst known else names in
  List.fold_left
    (fun rc name ->
      match List.assoc_opt name known with
      | Some f -> f (); rc
      | None ->
        Printf.eprintf "unknown experiment %s\n" name;
        1)
    0 selected

let experiments_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (all by default)")
    Term.(const experiments_run $ jobs_arg $ names)

(* ------------------------------------------------------------------ *)

(* gist fuzz: the self-checking bug-injection fuzzer (lib/fuzz).
   Generates programs with labelled root causes, diagnoses each
   end-to-end, scores the sketch against the label, shrinks failures. *)

let corpus_case_name i (case : Fuzz.Gen.case) =
  Printf.sprintf "%02d-%s" i case.Fuzz.Gen.c_name

let save_cases dir cases =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i case ->
      let file = Filename.concat dir (corpus_case_name i case ^ ".gir") in
      Fuzz.Corpus.save file case;
      Printf.printf "wrote %s (%d instrs)\n" file
        (Fuzz.Shrink.instr_count case))
    cases

let fuzz_replay path =
  let cases =
    if Sys.is_directory path then Fuzz.Corpus.load_dir path
    else Result.map (fun c -> [ c ]) (Fuzz.Corpus.load path)
  in
  match cases with
  | Error e -> prerr_endline e; 1
  | Ok cases ->
    let bad = ref 0 in
    List.iter
      (fun (case : Fuzz.Gen.case) ->
        let o = Fuzz.Check.check case in
        let v = o.Fuzz.Check.verdict in
        if v <> Fuzz.Check.Correct then incr bad;
        Printf.printf "%-28s %-8s %s\n" case.c_name
          (Fuzz.Gen.pattern_name case.c_pattern)
          (Fuzz.Check.verdict_to_string v))
      cases;
    Printf.printf "replayed %d corpus cases, %d failed\n" (List.length cases)
      !bad;
    if !bad = 0 then 0 else 1

(* Corpus generation: fuzz until [count] correctly diagnosed cases are
   in hand, shrink each while it *stays* correctly diagnosed, and save
   the minimal programs with their ground truth. *)
let fuzz_gen_corpus dir seed count jobs faults =
  let report = Fuzz.Runner.run ~jobs ~shrink:false ?faults ~seed ~count () in
  let correct =
    List.filter
      (fun (cr : Fuzz.Runner.case_report) ->
        cr.cr_verdict = Fuzz.Check.Correct)
      report.r_cases
  in
  let shrunk =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Parallel.Pool.map pool
          (fun (cr : Fuzz.Runner.case_report) ->
            let case = Fuzz.Gen.generate cr.cr_pattern cr.cr_seed in
            let case =
              match faults with
              | None -> case
              | Some _ -> { case with Fuzz.Gen.c_faults = faults }
            in
            (Fuzz.Shrink.run case Fuzz.Check.Correct).Fuzz.Shrink.shrunk)
          correct)
  in
  save_cases dir shrunk;
  Printf.printf "corpus: %d/%d cases diagnosed correctly and shrunk\n"
    (List.length shrunk) count;
  if List.length shrunk = count then 0 else 1

let print_service_stats (st : Serve.Service.stats) =
  Printf.printf
    "service: %d submitted, %d admitted, %d rejected, %d completed (%d \
     failed); %d rounds, %d fleet slots, peak %d in flight, max wait %d \
     round(s); %d checkpoint(s), %d divergence(s)\n"
    st.st_submitted st.st_admitted st.st_rejected st.st_completed st.st_failed
    st.st_rounds st.st_slots st.st_peak_inflight st.st_max_wait_rounds
    st.st_checkpoints st.st_divergences;
  if
    st.st_coalesced > 0 || st.st_shed > 0 || st.st_clusters > 0
    || st.st_evicted_clusters > 0 || st.st_recur_admitted > 0
  then
    Printf.printf
      "triage: %d coalesced, %d shed; %d fresh / %d recurrence admitted \
       (max lane wait %d/%d round(s)); %d cluster(s) live, %d evicted\n"
      st.st_coalesced st.st_shed st.st_fresh_admitted st.st_recur_admitted
      st.st_fresh_wait_rounds st.st_recur_wait_rounds st.st_clusters
      st.st_evicted_clusters

(* The fuzz accuracy gate through the multiplexed path: same cases,
   same scoring, every diagnosable case one session of a shared
   service (shrinking skipped). *)
let fuzz_serve seed count jobs json min_accuracy faults =
  let report, st = Serve.Gate.run ~jobs ?faults ~seed ~count () in
  if json then print_string (Fuzz.Runner.to_json report)
  else begin
    Fmt.pr "%a" Fuzz.Runner.pp report;
    print_service_stats st
  end;
  if Fuzz.Runner.min_pattern_accuracy report >= min_accuracy then 0 else 1

(* The same gate under service faults: seeded kills between scheduler
   rounds, torn journal tails and corrupted checkpoints ahead of every
   recovery, poisoned sessions.  Two bars: worst-pattern accuracy over
   the unpoisoned cases (recovery must be byte-identical), and full
   containment of the poisoned ones (a poisoned session must come back
   as a typed failure, never crash the service or vanish). *)
let fuzz_serve_chaos seed count jobs json min_accuracy chaos_rate faults =
  let rates = Faults.Chaos.spread chaos_rate in
  let report, st, cs =
    Serve.Gate.run_chaos ~jobs ?faults ~rates ~seed ~count ()
  in
  if json then print_string (Fuzz.Runner.to_json report)
  else begin
    Fmt.pr "%a" Fuzz.Runner.pp report;
    print_service_stats st;
    Printf.printf
      "chaos: %d kill(s) (%d torn, %d corrupted), %d failed recoveries, %d \
       resubmitted; %d/%d poisoned session(s) contained; %d divergence(s)\n"
      cs.Serve.Gate.cs_kills cs.cs_torn cs.cs_corrupted cs.cs_failed_recoveries
      cs.cs_resubmitted cs.cs_contained cs.cs_poisoned cs.cs_divergences
  end;
  let contained = cs.Serve.Gate.cs_contained = cs.cs_poisoned in
  if not contained then begin
    prerr_endline "chaos: a poisoned session escaped containment";
    1
  end
  else if Fuzz.Runner.min_pattern_accuracy report >= min_accuracy then 0
  else 1

let fuzz_run seed count jobs json no_shrink min_accuracy save_failures
    gen_corpus replay serve chaos faults =
  let jobs = resolve_jobs jobs in
  match (replay, gen_corpus) with
  | Some path, _ -> fuzz_replay path
  | None, Some dir -> fuzz_gen_corpus dir seed count jobs faults
  | None, None when serve ->
    (match chaos with
     | Some rate -> fuzz_serve_chaos seed count jobs json min_accuracy rate faults
     | None -> fuzz_serve seed count jobs json min_accuracy faults)
  | None, None ->
    let report =
      Fuzz.Runner.run ~jobs ~shrink:(not no_shrink) ?faults ~seed ~count ()
    in
    if json then print_string (Fuzz.Runner.to_json report)
    else Fmt.pr "%a" Fuzz.Runner.pp report;
    (match save_failures with
     | Some dir ->
       let shrunk =
         List.filter_map
           (fun (cr : Fuzz.Runner.case_report) ->
             Option.map
               (fun s -> s.Fuzz.Shrink.shrunk)
               cr.Fuzz.Runner.cr_shrink)
           (Fuzz.Runner.failures report)
       in
       if shrunk <> [] then save_cases dir shrunk
     | None -> ());
    if Fuzz.Runner.min_pattern_accuracy report >= min_accuracy then 0 else 1

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Campaign seed; the whole report is a pure \
                                 function of (seed, count).")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N"
             ~doc:"Cases to generate, round-robin over the 9 root-cause \
                   patterns.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the campaign report as JSON.")
  in
  let no_shrink =
    Arg.(value & flag
         & info [ "no-shrink" ] ~doc:"Skip minimizing failing cases.")
  in
  let min_accuracy =
    Arg.(value & opt float 0.9
         & info [ "min-accuracy" ] ~docv:"A"
             ~doc:"Exit non-zero when any pattern's root-cause accuracy \
                   falls below this bar.")
  in
  let save_failures =
    Arg.(value & opt (some string) None
         & info [ "save-failures" ] ~docv:"DIR"
             ~doc:"Save shrunk failing cases as corpus .gir files.")
  in
  let gen_corpus =
    Arg.(value & opt (some string) None
         & info [ "gen-corpus" ] ~docv:"DIR"
             ~doc:"Generate a seed corpus instead: fuzz $(b,--count) cases, \
                   shrink the correctly diagnosed ones while they stay \
                   correct, save them with their ground truth.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"PATH"
             ~doc:"Replay a corpus file or directory through the pipeline \
                   and re-check every verdict.")
  in
  let serve =
    Arg.(value & flag
         & info [ "serve" ]
             ~doc:"Run the campaign through the multiplexed diagnosis \
                   service instead of one-shot: every diagnosable case \
                   becomes one session of a shared service (shrinking \
                   skipped). Verdicts are bit-identical to the one-shot \
                   path.")
  in
  let chaos =
    Arg.(value & opt (some float) None
         & info [ "chaos" ] ~docv:"P"
             ~doc:"With $(b,--serve): inject seeded service faults — kill \
                   the service between rounds with per-round probability \
                   $(docv) (recovering it from its journal each time, \
                   sometimes through a torn tail or a corrupted \
                   checkpoint) and poison a fraction of sessions so their \
                   thunks raise. Checks recovery keeps verdicts \
                   byte-identical and poison stays contained.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate programs with injected, labelled root causes; diagnose \
          each end-to-end; score the sketches against the ground truth")
    Term.(
      const fuzz_run $ seed $ count $ jobs_arg $ json $ no_shrink
      $ min_accuracy $ save_failures $ gen_corpus $ replay $ serve $ chaos
      $ faults_term)

(* ------------------------------------------------------------------ *)

(* gist serve: replay a synthetic report stream — Bugbase bugs
   recycled under distinct session names plus fuzz-generated bugs —
   through the multiplexed diagnosis service, and print the scheduling
   ledger.  Exit 0 when every session completed and the ledger
   balances; 2 when the scheduler shape is refused or a service
   invariant broke (leaked or incomplete sessions); 3 when the stream
   is empty.

   Crash-only wiring: --journal persists the write-ahead journal,
   --kill-at-round kills the service mid-run and continues on the
   recovered incarnation (a live demonstration of [Service.recover]),
   --status prints a live per-session snapshot, and SIGINT requests a
   graceful drain (stop admitting, finish in-flight, flush the
   journal) instead of dying mid-round. *)

let print_status views =
  Printf.printf "%-6s %-28s %-5s %5s %5s %6s %6s %6s %7s %7s\n" "id" "session"
    "lane" "adm" "wait" "slots" "strk" "iter" "sigma" "valid";
  List.iter
    (fun (v : Serve.Service.session_view) ->
      let p = v.v_progress in
      Printf.printf "%-6d %-28s %-5s %5d %5d %6d %6d %6d %7d %7d\n" v.v_id
        v.v_name
        (Serve.Service.lane_label v.v_lane)
        v.v_admitted_round v.v_rounds_waiting v.v_slots v.v_strikes
        p.Gist.Server.Session.p_iteration p.p_sigma p.p_valid)
    views

let print_lanes (lv : Serve.Service.lane_view) =
  Printf.printf
    "lanes: fresh %d queued (credit %d, %d admitted) / recurrence %d queued \
     (credit %d, %d admitted)\n"
    lv.lv_fresh_queued lv.lv_fresh_credit lv.lv_fresh_admitted
    lv.lv_recur_queued lv.lv_recur_credit lv.lv_recur_admitted

let print_clusters views =
  if views <> [] then begin
    Printf.printf "%-18s %-28s %6s %6s %6s\n" "fingerprint" "cluster" "canon"
      "count" "done";
    List.iter
      (fun (v : Serve.Triage.view) ->
        Printf.printf "%-18s %-28s %6d %6d %6s\n"
          (Printf.sprintf "%016x" v.v_fp)
          v.v_name v.v_canonical v.v_count
          (if v.v_done_round < 0 then "-" else string_of_int v.v_done_round))
      views
  end

(* Per-cluster artifacts: the canonical diagnosis's sketch, and — when
   the bug came from the fuzzer — a shrunk standalone reproducer (.gir
   with its ground truth) that re-triggers the same cluster. *)
let emit_reproducers dir ~resolve ~completions views =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (c : Serve.Service.completion) -> Hashtbl.replace by_id c.c_id c)
    completions;
  let emitted = ref 0 in
  List.iter
    (fun (v : Serve.Triage.view) ->
      let stem = Filename.concat dir (Printf.sprintf "%016x" v.v_fp) in
      (match Hashtbl.find_opt by_id v.v_canonical with
       | Some { Serve.Service.c_result = Ok d; _ } ->
         let oc = open_out (stem ^ ".sketch.txt") in
         output_string oc (Fsketch.Render.render d.Gist.Server.sketch);
         close_out oc;
         incr emitted
       | Some { Serve.Service.c_result = Error _; _ } | None -> ());
      match resolve v.Serve.Triage.v_name with
      | Some { Serve.Service.sp_case = Some case; _ } ->
        let verdict =
          match Hashtbl.find_opt by_id v.v_canonical with
          | Some { Serve.Service.c_result = Ok d; _ } ->
            Fuzz.Check.verdict_of_sketch case d.Gist.Server.sketch
          | _ -> Fuzz.Check.Correct
        in
        let shrunk = (Fuzz.Shrink.run case verdict).Fuzz.Shrink.shrunk in
        Fuzz.Corpus.save (stem ^ ".gir") shrunk
      | Some _ | None -> ())
    views;
  Printf.printf "reproducers: %d sketch(es) and corpus case(s) under %s\n"
    !emitted dir

let serve_run sessions fuzz_count seed jobs inflight queue quantum budget
    checkpoint_every deadline strikes summary status journal_file kill_at
    triage max_clusters fresh_weight recur_weight recency storm dup_ratio
    reproducer_dir faults =
  let jobs = resolve_jobs jobs in
  let sconfig =
    {
      Serve.Service.max_inflight = inflight;
      max_queue = queue;
      quantum;
      round_budget = budget;
      checkpoint_every_rounds = checkpoint_every;
      session_deadline_rounds = deadline;
      max_session_strikes = strikes;
      triage;
      max_clusters;
      fresh_weight;
      recur_weight;
      recency_rounds = recency;
    }
  in
  match Serve.Service.validate sconfig with
  | Error e ->
    prerr_endline (Serve.Service.cerror_to_string e);
    2
  | Ok sconfig -> (
    let specs =
      if storm then
        Serve.Stream.storm ?faults ~fuzz_count ~seed ~sessions ~dup_ratio ()
      else Serve.Stream.mixed ?faults ~fuzz_count ~seed ~sessions ()
    in
    match specs with
    | [] -> exit_no_failure
    | specs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let svc = ref (Serve.Service.create ~sconfig ~pool ()) in
          (* SIGINT = graceful drain: already-accepted work finishes,
             the journal keeps every record, nothing is half-done. *)
          Sys.set_signal Sys.sigint
            (Sys.Signal_handle
               (fun _ -> Serve.Service.request_drain !svc));
          let resolve =
            let tbl = Hashtbl.create (List.length specs) in
            List.iter
              (fun (sp : Serve.Service.spec) ->
                Hashtbl.replace tbl sp.sp_name sp)
              specs;
            fun name -> Hashtbl.find_opt tbl name
          in
          (* Recovery replays completions at-least-once; dedup by
             ticket id, first sighting wins. *)
          let seen = Hashtbl.create (List.length specs) in
          let harvested = ref [] in
          let sheds = ref [] in
          let harvest () =
            List.iter
              (fun (c : Serve.Service.completion) ->
                if not (Hashtbl.mem seen c.c_id) then begin
                  Hashtbl.replace seen c.c_id ();
                  harvested := c :: !harvested
                end)
              (Serve.Service.take_completions !svc);
            sheds := !sheds @ Serve.Service.take_shed !svc
          in
          let submit_all () =
            List.iter
              (fun sp ->
                let rec push () =
                  match Serve.Service.submit !svc sp with
                  | Ok _ -> ()
                  | Error (Serve.Service.Shed _) ->
                    (* Load shedding is final for this submission: the
                       recurrence was refused under load, typed and
                       booked — the client backs off, not the CLI. *)
                    ()
                  | Error (Serve.Service.Busy _) ->
                    (* Saturated: run a round, harvest, retry. *)
                    ignore (Serve.Service.step !svc);
                    harvest ();
                    push ()
                in
                push ())
              specs
          in
          let t0 = Unix.gettimeofday () in
          submit_all ();
          if status then begin
            (* Admission happens at round start, so a freshly
               submitted stream has an empty ring until the first
               step; run one round so the snapshot shows the fleet. *)
            ignore (Serve.Service.step !svc : bool);
            harvest ();
            print_status (Serve.Service.status !svc);
            if Serve.Service.triage_enabled !svc then begin
              print_lanes (Serve.Service.lanes !svc);
              print_clusters (Serve.Service.clusters !svc)
            end
          end;
          let killed = ref false in
          let rec run () =
            if Serve.Service.step !svc then begin
              harvest ();
              (match kill_at with
               | Some k
                 when (not !killed)
                      && (Serve.Service.stats !svc).st_rounds >= k ->
                 killed := true;
                 let bytes = Serve.Service.journal_bytes !svc in
                 (match Serve.Service.recover ~pool ~resolve bytes with
                  | Ok svc' ->
                    Printf.printf
                      "killed at round %d; recovered from %d journal \
                       byte(s)\n"
                      k (String.length bytes);
                    svc := svc'
                  | Error e ->
                    prerr_endline (Serve.Service.rerror_to_string e))
               | _ -> ());
              run ()
            end
          in
          run ();
          harvest ();
          let wall = Unix.gettimeofday () -. t0 in
          (match journal_file with
           | Some path ->
             Serve.Journal.save_file path (Serve.Service.journal_bytes !svc)
           | None -> ());
          let last = List.rev !harvested in
          if summary then
            List.iter
              (fun (c : Serve.Service.completion) ->
                match c.c_result with
                | Ok d ->
                  Printf.printf
                    "%-32s %2d iteration(s) %4d runs  rounds %d..%d\n"
                    c.c_name d.Gist.Server.iterations
                    d.Gist.Server.total_runs c.c_admitted_round
                    c.c_completed_round
                | Error f ->
                  Printf.printf "%-32s FAILED %s  rounds %d..%d\n" c.c_name
                    (Serve.Service.session_failure_to_string f)
                    c.c_admitted_round c.c_completed_round)
              last;
          let st = Serve.Service.stats !svc in
          print_service_stats st;
          if Serve.Service.triage_enabled !svc && status then begin
            print_lanes (Serve.Service.lanes !svc);
            print_clusters (Serve.Service.clusters !svc)
          end;
          List.iter
            (fun (sh : Serve.Service.shed_notice) ->
              Printf.printf
                "shed: ticket %d (%s) at round %d; retry after %d round(s)\n"
                sh.sh_id sh.sh_name sh.sh_round sh.sh_retry_after_rounds)
            !sheds;
          Printf.printf "throughput: %.1f sessions/s (%d sessions in %.2fs)\n"
            (float_of_int st.st_completed /. wall)
            st.st_completed wall;
          (match reproducer_dir with
           | Some dir when Serve.Service.triage_enabled !svc ->
             emit_reproducers dir ~resolve ~completions:last
               (Serve.Service.clusters !svc)
           | Some _ | None -> ());
          let balanced =
            st.st_submitted
            = st.st_completed + st.st_rejected + st.st_coalesced + st.st_shed
            && Serve.Service.inflight !svc = 0
            && Serve.Service.queued !svc = 0
            && List.length last = st.st_completed
          in
          if not balanced then begin
            prerr_endline "serve: session ledger does not balance";
            2
          end
          else 0))

let serve_cmd =
  let sessions =
    Arg.(value & opt int 100
         & info [ "sessions" ] ~docv:"N"
             ~doc:"Concurrent-diagnosis sessions to replay.")
  in
  let fuzz_count =
    Arg.(value & opt int 8
         & info [ "fuzz-count" ] ~docv:"K"
             ~doc:"Distinct fuzz-generated bugs mixed into the stream \
                   alongside the Bugbase.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Stream seed; the whole replay is a pure \
                                 function of (seed, sessions).")
  in
  let inflight =
    Arg.(value & opt int Serve.Service.default.Serve.Service.max_inflight
         & info [ "inflight" ] ~docv:"N"
             ~doc:"Admission cap: concurrent sessions in flight.")
  in
  let queue =
    Arg.(value & opt int Serve.Service.default.Serve.Service.max_queue
         & info [ "queue" ] ~docv:"N"
             ~doc:"Waiting room: submissions queued for admission before \
                   the service answers with a typed busy reject.")
  in
  let quantum =
    Arg.(value & opt int Serve.Service.default.Serve.Service.quantum
         & info [ "quantum" ] ~docv:"N"
             ~doc:"Fleet slots granted per session per scheduler round.")
  in
  let budget =
    Arg.(value & opt int Serve.Service.default.Serve.Service.round_budget
         & info [ "round-budget" ] ~docv:"N"
             ~doc:"Total fleet slots run per scheduler round.")
  in
  let summary =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"Print one line per completed session.")
  in
  let checkpoint_every =
    Arg.(value
         & opt int
             Serve.Service.default.Serve.Service.checkpoint_every_rounds
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Journal a full-state checkpoint every $(docv) scheduler \
                   rounds (0: only the initial and shutdown checkpoints). \
                   Recovery replays at most $(docv) rounds.")
  in
  let deadline =
    Arg.(value
         & opt int Serve.Service.default.Serve.Service.session_deadline_rounds
         & info [ "deadline-rounds" ] ~docv:"N"
             ~doc:"Evict a session still undiagnosed $(docv) rounds after \
                   admission as a typed timed-out failure (0: no deadline).")
  in
  let strikes =
    Arg.(value
         & opt int Serve.Service.default.Serve.Service.max_session_strikes
         & info [ "max-strikes" ] ~docv:"N"
             ~doc:"Rounds with raising thunks a session survives before it \
                   is quarantined.")
  in
  let status =
    Arg.(value & flag
         & info [ "status" ]
             ~doc:"Print a live per-session snapshot (rounds waited, slots, \
                   strikes, iteration, sigma, valid reports) after the \
                   submission phase.")
  in
  let journal_file =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Persist the write-ahead journal to $(docv) at exit.")
  in
  let kill_at =
    Arg.(value & opt (some int) None
         & info [ "kill-at-round" ] ~docv:"K"
             ~doc:"Crash-recovery demo: kill the service once it reaches \
                   round $(docv), recover a fresh one from the journal, \
                   and finish the stream on it. The ledger must still \
                   balance.")
  in
  let triage =
    Arg.(value & flag
         & info [ "triage" ]
             ~doc:"Turn the duplicate-storm front-end on: fingerprint-keyed \
                   coalescing of duplicate reports, two-lane (fresh vs \
                   recurrence) deficit-round-robin admission, and typed \
                   recurrence shedding at the queue bound.")
  in
  let max_clusters =
    Arg.(value & opt int Serve.Service.default.Serve.Service.max_clusters
         & info [ "max-clusters" ] ~docv:"N"
             ~doc:"LRU bound on the fingerprint cluster table (only \
                   diagnosed clusters are evictable).")
  in
  let fresh_weight =
    Arg.(value & opt int Serve.Service.default.Serve.Service.fresh_weight
         & info [ "fresh-weight" ] ~docv:"W"
             ~doc:"Deficit-round-robin credit refill for the fresh \
                   (never-seen fingerprint) admission lane.")
  in
  let recur_weight =
    Arg.(value & opt int Serve.Service.default.Serve.Service.recur_weight
         & info [ "recur-weight" ] ~docv:"W"
             ~doc:"Deficit-round-robin credit refill for the recurrence \
                   (re-diagnosis) admission lane.")
  in
  let recency =
    Arg.(value & opt int Serve.Service.default.Serve.Service.recency_rounds
         & info [ "recency-rounds" ] ~docv:"N"
             ~doc:"A diagnosed cluster keeps coalescing duplicates for \
                   $(docv) rounds, then a duplicate re-opens it as a \
                   recurrence (0: coalesce for as long as it stays tabled).")
  in
  let storm =
    Arg.(value & flag
         & info [ "storm" ]
             ~doc:"Replay a duplicate-heavy storm stream instead of the \
                   uniform mix: a seeded hot set of bugs is re-reported \
                   over and over while the remaining bugs arrive once \
                   each as fresh traffic.")
  in
  let dup_ratio =
    Arg.(value & opt float 0.8
         & info [ "dup-ratio" ] ~docv:"R"
             ~doc:"With $(b,--storm): the fraction of sessions that are \
                   duplicates of the hot set.")
  in
  let reproducers =
    Arg.(value & opt (some string) None
         & info [ "emit-reproducers" ] ~docv:"DIR"
             ~doc:"With $(b,--triage): after the drain, write one \
                   artifact pair per cluster under $(docv) — the \
                   canonical diagnosis's sketch and, for fuzz-born bugs, \
                   a shrunk standalone .gir reproducer.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Replay a synthetic multi-bug report stream through the \
          persistent diagnosis service (admission control, fair \
          multiplexed scheduling, typed backpressure, duplicate triage, \
          durable checkpoints and crash recovery)")
    Term.(
      const serve_run $ sessions $ fuzz_count $ seed $ jobs_arg $ inflight
      $ queue $ quantum $ budget $ checkpoint_every $ deadline $ strikes
      $ summary $ status $ journal_file $ kill_at $ triage $ max_clusters
      $ fresh_weight $ recur_weight $ recency $ storm $ dup_ratio
      $ reproducers $ faults_term)

let () =
  let doc = "failure sketching for automated root cause diagnosis" in
  let info = Cmd.info "gist" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; diagnose_cmd; slice_cmd; baseline_cmd; experiments_cmd;
            run_cmd; show_cmd; fuzz_cmd; serve_cmd;
          ]))
