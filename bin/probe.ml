(* Development probe: outcome distribution of each bug across client
   workloads, plus an end-to-end Gist diagnosis dump.  Not part of the
   evaluation harness; useful for calibrating bug trigger rates. *)

let probe_bug (bug : Bugbase.Common.t) n =
  Printf.printf "=== %s (%s %s, bug %s) ===\n" bug.name bug.software
    bug.version bug.bug_id;
  let tally = Hashtbl.create 8 in
  for c = 0 to n - 1 do
    let r =
      Exec.Interp.run ~preempt_prob:bug.preempt_prob bug.program
        (bug.workload_of c)
    in
    let key =
      match r.outcome with
      | Exec.Interp.Success -> "success"
      | Exec.Interp.Failed rep ->
        Printf.sprintf "%s@%d(%s)" (Exec.Failure.kind_tag rep.kind) rep.pc
          (String.concat "<" rep.stack)
    in
    Hashtbl.replace tally key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally key))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf "  %-50s %4d / %d\n" k v n)

let diagnose_bug (bug : Bugbase.Common.t) =
  match Bugbase.Common.find_target_failure bug with
  | None -> Printf.printf "no target failure found for %s\n" bug.name
  | Some (_, failure) ->
    Printf.printf "\nInitial failure: %s\n" (Exec.Failure.report_to_string failure);
    let ideal = Bugbase.Common.ideal bug in
    let oracle = Experiments.Oracle.for_bug bug in
    let d =
      Gist.Server.diagnose ~oracle ~bug_name:bug.name
        ~failure_type:bug.failure_type ~program:bug.program
        ~workload_of:bug.workload_of ~failure ()
    in
    Printf.printf "slice: %d instrs (%d source lines)\n"
      (Slicing.Slicer.instr_count d.slice)
      (Slicing.Slicer.source_loc_count d.slice);
    Printf.printf "iterations=%d recurrences=%d runs=%d overhead=%.2f%%\n"
      d.iterations d.recurrences d.total_runs d.avg_overhead_pct;
    List.iter
      (fun (it : Gist.Server.iteration_info) ->
        Printf.printf
          "  iter sigma=%d tracked=%d fails=%d succs=%d clients=%d ovh=%.2f%% pass=%b\n"
          it.it_sigma it.it_tracked it.it_fails it.it_succs it.it_clients
          it.it_avg_overhead it.it_oracle_pass)
      d.trace;
    let acc = Fsketch.Accuracy.of_sketch d.sketch ~ideal in
    Printf.printf "accuracy: AR=%.1f AO=%.1f A=%.1f (gist=%d ideal=%d common=%d)\n"
      acc.relevance acc.ordering acc.overall acc.n_gist acc.n_ideal acc.n_common;
    let show_iid iid =
      let i = Ir.Program.instr_at bug.program iid in
      Printf.sprintf "%d(L%d:%s)" iid i.loc.line
        (if i.text = "" then "." else String.sub i.text 0 (min 24 (String.length i.text)))
    in
    let got = Fsketch.Sketch.iids d.sketch in
    let missing = List.filter (fun i -> not (List.mem i got)) ideal.i_iids in
    if missing <> [] then
      Printf.printf "MISSING ideal: %s\n"
        (String.concat " " (List.map show_iid missing));
    Printf.printf "gist order : %s\n"
      (String.concat " " (List.map show_iid (Fsketch.Sketch.statement_order d.sketch)));
    Printf.printf "ideal order: %s\n"
      (String.concat " " (List.map show_iid ideal.i_iids));
    print_string (Fsketch.Render.render d.sketch)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let n =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
  in
  List.iter
    (fun (b : Bugbase.Common.t) ->
      if which = "all" || String.lowercase_ascii b.name = String.lowercase_ascii which
      then begin
        probe_bug b n;
        diagnose_bug b
      end)
    Bugbase.Registry.all
